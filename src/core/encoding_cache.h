#ifndef CSJ_CORE_ENCODING_CACHE_H_
#define CSJ_CORE_ENCODING_CACHE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "core/community.h"
#include "core/encoding.h"
#include "core/join_result.h"
#include "core/types.h"
#include "ego/ego_join.h"
#include "ego/normalized.h"

namespace csj {

/// Content identity of a community: a 64-bit FNV-1a fingerprint over
/// (d, size, every counter) plus the maximum counter, both computed in
/// one pass over the flat buffer. The fingerprint — not the object
/// address — keys the encoding cache, so a mutated (or reloaded, or
/// copied) community can never alias a stale entry: its counters change,
/// its fingerprint changes, and the old entry simply goes cold until
/// evicted or Clear()ed.
struct CommunityDigest {
  uint64_t fingerprint = 0;
  Count max_counter = 0;
};

/// One O(n*d) pass; the irreducible per-lookup cost of content keying
/// (cheap next to the sort the cache saves). Also the source of
/// max_counter for SuperEGO's couple-level normalization, replacing a
/// second scan.
CommunityDigest DigestCommunity(const Community& community);

/// A community's SuperEGO preparation under one (eps, norm denominator,
/// dimension order, threshold): the normalized EGO-sorted rows, the
/// segment tree over their cells, and the float SoA window for batched
/// leaf verification.
struct SuperEgoPrep {
  ego::NormalizedData data;
  ego::SegmentTree tree;
  VerifyWindowF window;

  size_t MemoryBytes() const {
    return data.flat.capacity() * sizeof(float) +
           data.ids.capacity() * sizeof(UserId) + tree.MemoryBytes() +
           window.MemoryBytes();
  }
};

/// Builds one side's SuperEGO prep (shared by the cache's builder and the
/// cache-less path, so both produce bit-identical buffers).
SuperEgoPrep BuildSuperEgoPrep(const Community& community, Count max_count,
                               Epsilon eps, const std::vector<Dim>& dim_order,
                               uint32_t threshold);

/// FNV-1a over a dimension order (part of the SuperEGO prep key: the
/// reorder step is couple-driven, so one community legitimately has one
/// prep per distinct order it was joined under).
uint64_t HashDimOrder(const std::vector<Dim>& order);

/// Community-level encoded-buffer cache: a thread-safe, shard-locked memo
/// from (community fingerprint, parameters, side) to shared immutable
/// encoded buffers, so an all-pairs screening run over C communities
/// builds O(C) encodings instead of O(C^2).
///
/// Entries:
///   - EncodedB / EncodedA (+ its SoA verify window) per (fp, eps, parts)
///   - a community's counters as a natural-order SoA window per fp
///     (the Baseline methods' batched scans)
///   - SuperEGO prep per (fp, eps, norm_max, dim-order hash, threshold)
///   - the couple-level SuperEGO dimension order per (unordered fp pair,
///     eps, max_count) — ComputeDimensionOrder is symmetric in its two
///     communities, so the key ignores couple orientation
///
/// Concurrency: the hit path — the steady state of an all-pairs run,
/// where every community's buffers are resident after the first pass —
/// takes only a SHARED shard lock, so concurrent readers of one shard
/// never serialize (the PR-2 cross-couple scaling loss was exactly this:
/// an exclusive mutex per shard turned all-hit workloads into a lock
/// convoy). Misses upgrade to an exclusive lock, re-check, and insert an
/// in-flight slot; builds run OUTSIDE any lock. N threads requesting the
/// same key race to insert one slot — exactly one builds, the rest block
/// on its shared_future. Hence `misses` counts BUILDS: for a run with no
/// eviction the hit/miss totals are deterministic for every thread count
/// (total lookups and unique keys are data properties).
///
/// Eviction: optional byte budget, split evenly over the shards; each
/// shard evicts its oldest ready entries (insertion order) when over
/// budget. Readers holding a shared_ptr keep evicted buffers alive;
/// eviction only unpins them from the map.
class EncodingCache {
 public:
  /// `capacity_bytes` == 0 means unlimited.
  explicit EncodingCache(size_t capacity_bytes = 0);
  ~EncodingCache();

  EncodingCache(const EncodingCache&) = delete;
  EncodingCache& operator=(const EncodingCache&) = delete;

  /// Global counters since construction (or the last ResetStats()).
  /// `bytes` / `entries` describe what is resident right now.
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t bytes_built = 0;
    uint64_t evictions = 0;
    uint64_t entries = 0;
    uint64_t bytes = 0;

    double HitRate() const {
      const uint64_t lookups = hits + misses;
      return lookups == 0
                 ? 0.0
                 : static_cast<double>(hits) / static_cast<double>(lookups);
    }
  };

  /// The B-side MinMax buffer of `b` under (eps, parts). `parts` must be
  /// the Encoder's CLAMPED part count. `stats` (nullable) receives the
  /// lookup's hit/miss/bytes accounting.
  std::shared_ptr<const EncodedB> GetEncodedB(const Community& b,
                                              const CommunityDigest& digest,
                                              Epsilon eps, uint32_t parts,
                                              JoinStats* stats);

  /// The A-side MinMax buffer (carrying its SoA verify window).
  std::shared_ptr<const EncodedA> GetEncodedA(const Community& a,
                                              const CommunityDigest& digest,
                                              Epsilon eps, uint32_t parts,
                                              JoinStats* stats);

  /// The community's counters as a natural-order SoA window (Baseline).
  std::shared_ptr<const VerifyWindow> GetCommunityWindow(
      const Community& community, const CommunityDigest& digest,
      JoinStats* stats);

  /// The couple's SuperEGO dimension order (symmetric in b/a).
  std::shared_ptr<const std::vector<Dim>> GetDimensionOrder(
      const Community& b, const Community& a, const CommunityDigest& digest_b,
      const CommunityDigest& digest_a, Epsilon eps, Count max_count,
      JoinStats* stats);

  /// One side's SuperEGO prep under (eps, max_count, order, threshold).
  std::shared_ptr<const SuperEgoPrep> GetSuperEgoPrep(
      const Community& community, const CommunityDigest& digest, Epsilon eps,
      Count max_count, const std::vector<Dim>& dim_order, uint64_t order_hash,
      uint32_t threshold, JoinStats* stats);

  /// Bulk-ingestion warm inserts: install an ALREADY-BUILT artifact
  /// under the same key the matching Get* lookup computes, without the
  /// promise/future build-dedup machinery (the dominant per-entry cost
  /// of warming through GetOrBuild when the caller knows the key is
  /// cold). First insert wins: a resident or in-flight slot keeps its
  /// entry and the offered artifact is dropped — builders are
  /// deterministic, so the bytes are the same either way. Each call
  /// counts as one miss + build, exactly what the GetOrBuild path that
  /// would otherwise have built it would have counted. `parts` must be
  /// the Encoder's CLAMPED part count, as in GetEncodedB/GetEncodedA.
  void PutEncodedB(const CommunityDigest& digest, Epsilon eps, uint32_t parts,
                   std::shared_ptr<const EncodedB> encoded);
  void PutEncodedA(const CommunityDigest& digest, Epsilon eps, uint32_t parts,
                   std::shared_ptr<const EncodedA> encoded);
  void PutCommunityWindow(const CommunityDigest& digest,
                          std::shared_ptr<const VerifyWindow> window);

  /// Pre-sizes every shard's hash table for `additional_entries` more
  /// slots. Bulk ingestion knows how many artifacts it is about to warm
  /// (3 per catalog entry); reserving once up front removes every
  /// incremental rehash from the ingest path — each rehash rewalks a
  /// whole shard map under its exclusive lock.
  void Reserve(size_t additional_entries);

  /// Drops every resident entry (buffers still referenced by shared_ptr
  /// holders stay alive). In-flight builds complete and are discarded.
  void Clear();

  Stats GetStats() const;
  void ResetStats();

  size_t capacity_bytes() const { return capacity_bytes_; }

 private:
  struct Key {
    uint64_t fingerprint = 0;
    uint64_t salt = 0;

    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    size_t operator()(const Key& key) const;
  };
  struct Slot {
    std::shared_future<std::shared_ptr<const void>> future;
    /// Set once the artifact exists (warm inserts: at insert; built
    /// slots: on completion). Hits return this directly — a shared_ptr
    /// copy instead of a shared_future copy + get() — and warm-inserted
    /// slots have no future at all.
    std::shared_ptr<const void> value;
    uint64_t token = 0;   ///< insert identity (Clear() vs late completion)
    size_t bytes = 0;     ///< 0 until the build completes
    bool ready = false;
  };
  /// Cache-line aligned: adjacent shards' locks are ping-ponged by
  /// different threads; sharing a line would re-couple what sharding
  /// decoupled.
  struct alignas(64) Shard {
    mutable std::shared_mutex mu;  ///< shared on hits, exclusive on misses
    std::unordered_map<Key, Slot, KeyHash> map;
    std::deque<Key> insertion_order;  ///< ready entries, oldest first
    size_t bytes = 0;
  };

  /// The generic memo: returns the entry for `key`, building it with
  /// `build` (returning shared_ptr<const void> + its byte size) exactly
  /// once across all racing threads.
  template <typename T, typename BuildFn>
  std::shared_ptr<const T> GetOrBuild(const Key& key, BuildFn&& build,
                                      JoinStats* stats);

  /// Shared implementation of the Put* warm inserts.
  void PutReady(const Key& key, std::shared_ptr<const void> value,
                size_t bytes);

  Shard& ShardOf(const Key& key);
  void EvictLocked(Shard& shard);

  static constexpr size_t kShards = 16;

  const size_t capacity_bytes_;
  const size_t shard_capacity_bytes_;
  std::vector<Shard> shards_;
  std::atomic<uint64_t> next_token_{1};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> bytes_built_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace csj

#endif  // CSJ_CORE_ENCODING_CACHE_H_
