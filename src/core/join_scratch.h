#ifndef CSJ_CORE_JOIN_SCRATCH_H_
#define CSJ_CORE_JOIN_SCRATCH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/epsilon_predicate.h"
#include "core/join_result.h"
#include "matching/matcher.h"

namespace csj {
namespace internal {

/// One chunk's output arena for the intra-join parallel phases: candidate
/// edges plus the chunk's event counters. Aligned to two cache lines so
/// adjacent chunks' vector headers and hot counters (bumped once per
/// examined pair) never share a line — with 8 workers the per-event
/// false-sharing traffic otherwise dominates small joins.
struct alignas(128) ChunkSlot {
  /// Candidate edges in scan order. The exact methods store whatever edge
  /// representation their merge wants (real ids, or sorted-buffer indices
  /// for Ex-MinMax's segment replay).
  std::vector<MatchedPair> edges;
  JoinStats stats;
};

/// Reusable pool of ChunkSlots owned by the SUBMITTING thread's scratch:
/// a join acquires one span per parallel phase, workers fill disjoint
/// slots, and the join merges them in chunk order. Capacity (outer and
/// per-slot) survives across joins, so repeated joins stop allocating
/// their chunk bookkeeping — the per-couple allocator churn that showed
/// up as cross-couple scaling loss.
class ChunkArenas {
 public:
  /// Slots [0, chunks), cleared (capacity retained). The span is valid
  /// until the next Acquire on the same thread; a join must finish its
  /// merge before this thread starts another parallel phase.
  std::span<ChunkSlot> Acquire(uint32_t chunks) {
    if (slots_.size() < chunks) slots_.resize(chunks);
    for (uint32_t c = 0; c < chunks; ++c) {
      slots_[c].edges.clear();
      slots_[c].stats = JoinStats{};
    }
    return {slots_.data(), chunks};
  }

 private:
  std::vector<ChunkSlot> slots_;
};

/// Reusable per-thread temporaries for the join hot paths.
///
/// Every join method executes on exactly one thread (the pipeline's
/// cross-couple parallelism hands each couple to one worker; the
/// intra-join ParallelFor bodies use chunk-local buffers, never this),
/// so a thread_local instance is race-free and lets repeated joins reuse
/// capacity instead of re-allocating their bookkeeping vectors on every
/// call — the dominant constant cost when screening thousands of small
/// couples.
///
/// Discipline: a field is borrowed for the duration of ONE join and must
/// not be live across a nested use of the same field. Each join method
/// touches a disjoint set of fields at any moment (used/matched flags,
/// the candidate-edge buffers, the encoder temporaries), which keeps the
/// sharing safe even when a join builds encoders mid-flight.
struct JoinScratch {
  /// A-side / B-side "already matched" flags (uint8_t, not vector<bool>:
  /// byte stores are cheaper than bit RMW in the scan inner loops).
  std::vector<uint8_t> used_a;
  std::vector<uint8_t> matched_b;

  /// Ex-MinMax's open segment and the exact methods' merged candidate
  /// edge list (cleared per join, capacity retained).
  std::vector<MatchedPair> segment;
  std::vector<MatchedPair> candidates;

  /// Encoder temporaries: per-user part sums / range endpoints and the
  /// sort keys + permutation used to order encoded buffers.
  std::vector<uint64_t> sums;
  std::vector<uint64_t> lo;
  std::vector<uint64_t> hi;
  std::vector<uint64_t> keys;
  std::vector<uint32_t> perm;

  /// Cache-less batched verification: SoA windows repacked per join (the
  /// cached paths use the windows attached to the cached buffers instead)
  /// and the survivor bitmask of full-range Many calls.
  VerifyWindow window;
  VerifyWindowF window_f;
  std::vector<uint64_t> mask;

  /// Candidate indices that survived the MinMax prescreen of one probe
  /// and still need the d-dimensional comparison.
  std::vector<uint32_t> survivors;

  /// Per-chunk output arenas of this thread's intra-join parallel phases
  /// (the chunks themselves may execute on pool workers; only the slots
  /// live here, and each worker touches exactly one).
  ChunkArenas chunk_arenas;

  /// Deferred per-segment matching farm of Ex-MinMax's refine phase
  /// (JoinOptions::matching_threads > 1). Per-segment edge arenas live in
  /// the slots and are reused across joins; the matching tasks may run on
  /// pool workers, but each task touches exactly one slot.
  matching::SegmentMatchFarm match_farm;
};

/// The calling thread's scratch. Never hold the reference across a point
/// where the same thread may start another join (e.g. across a nested
/// RunMethod call) while still using a field the other join also uses.
inline JoinScratch& GetJoinScratch() {
  thread_local JoinScratch scratch;
  return scratch;
}

}  // namespace internal
}  // namespace csj

#endif  // CSJ_CORE_JOIN_SCRATCH_H_
