#ifndef CSJ_CORE_JOIN_SCRATCH_H_
#define CSJ_CORE_JOIN_SCRATCH_H_

#include <cstdint>
#include <vector>

#include "core/epsilon_predicate.h"
#include "core/join_result.h"

namespace csj {
namespace internal {

/// Reusable per-thread temporaries for the join hot paths.
///
/// Every join method executes on exactly one thread (the pipeline's
/// cross-couple parallelism hands each couple to one worker; the
/// intra-join ParallelFor bodies use chunk-local buffers, never this),
/// so a thread_local instance is race-free and lets repeated joins reuse
/// capacity instead of re-allocating their bookkeeping vectors on every
/// call — the dominant constant cost when screening thousands of small
/// couples.
///
/// Discipline: a field is borrowed for the duration of ONE join and must
/// not be live across a nested use of the same field. Each join method
/// touches a disjoint set of fields at any moment (used/matched flags,
/// the candidate-edge buffers, the encoder temporaries), which keeps the
/// sharing safe even when a join builds encoders mid-flight.
struct JoinScratch {
  /// A-side / B-side "already matched" flags (uint8_t, not vector<bool>:
  /// byte stores are cheaper than bit RMW in the scan inner loops).
  std::vector<uint8_t> used_a;
  std::vector<uint8_t> matched_b;

  /// Ex-MinMax's open segment and the exact methods' merged candidate
  /// edge list (cleared per join, capacity retained).
  std::vector<MatchedPair> segment;
  std::vector<MatchedPair> candidates;

  /// Encoder temporaries: per-user part sums / range endpoints and the
  /// sort keys + permutation used to order encoded buffers.
  std::vector<uint64_t> sums;
  std::vector<uint64_t> lo;
  std::vector<uint64_t> hi;
  std::vector<uint64_t> keys;
  std::vector<uint32_t> perm;

  /// Cache-less batched verification: SoA windows repacked per join (the
  /// cached paths use the windows attached to the cached buffers instead)
  /// and the survivor bitmask of full-range Many calls.
  VerifyWindow window;
  VerifyWindowF window_f;
  std::vector<uint64_t> mask;

  /// Candidate indices that survived the MinMax prescreen of one probe
  /// and still need the d-dimensional comparison.
  std::vector<uint32_t> survivors;
};

/// The calling thread's scratch. Never hold the reference across a point
/// where the same thread may start another join (e.g. across a nested
/// RunMethod call) while still using a field the other join also uses.
inline JoinScratch& GetJoinScratch() {
  thread_local JoinScratch scratch;
  return scratch;
}

}  // namespace internal
}  // namespace csj

#endif  // CSJ_CORE_JOIN_SCRATCH_H_
