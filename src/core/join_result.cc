#include "core/join_result.h"

namespace csj {

const char* EventName(Event event) {
  switch (event) {
    case Event::kMinPrune: return "MIN PRUNE";
    case Event::kMaxPrune: return "MAX PRUNE";
    case Event::kNoOverlap: return "NO OVERLAP";
    case Event::kNoMatch: return "NO MATCH";
    case Event::kMatch: return "MATCH";
  }
  return "UNKNOWN";
}

}  // namespace csj
