#ifndef CSJ_CORE_SIMILARITY_BOUND_H_
#define CSJ_CORE_SIMILARITY_BOUND_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/community.h"
#include "core/types.h"

namespace csj {

namespace util {
class ThreadPool;
}  // namespace util

/// Cheap upper bound on the EXACT CSJ matched-pair count — no
/// d-dimensional comparisons, no candidate graph.
///
/// Every eps-match <b, a> satisfies encoded_id(b) ∈ [encoded_min(a),
/// encoded_max(a)] (the MinMax window invariant), so the exact matching
/// can never exceed the maximum matching of the interval-point graph
/// {(b, a) : id_b ∈ window_a}. That relaxation is solvable exactly with a
/// classic greedy in O(n log n): process A's windows by ascending
/// encoded_max and give each the smallest unassigned id inside it.
///
/// Use: catalog pruning. A brand comparing against thousands of candidate
/// communities can discard every couple whose bound is already below the
/// interesting similarity band before running ANY join — the pipeline's
/// `use_upper_bound_prune` does exactly this.
uint32_t MatchingUpperBound(const Community& b, const Community& a,
                            Epsilon eps);

/// MatchingUpperBound / |B| — an upper bound on similarity(B, A). 0 when
/// B is empty.
double SimilarityUpperBound(const Community& b, const Community& a,
                            Epsilon eps);

/// Batched bounds — the serving subsystem's bound-phase entry point:
/// result[i] = SimilarityUpperBound(*couples[i].first, *couples[i].second,
/// eps). With `threads > 1` the couples run as tasks on `pool` (null =
/// the global pool); each task writes only its own slot, so the result
/// is byte-identical to the serial loop for any thread count.
std::vector<double> SimilarityUpperBounds(
    const std::vector<std::pair<const Community*, const Community*>>& couples,
    Epsilon eps, util::ThreadPool* pool = nullptr, uint32_t threads = 1);

}  // namespace csj

#endif  // CSJ_CORE_SIMILARITY_BOUND_H_
