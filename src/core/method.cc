#include "core/method.h"

#include "core/baseline.h"
#include "core/gridhash_method.h"
#include "core/hybrid_method.h"
#include "core/minmax.h"
#include "core/superego_method.h"

namespace csj {

const char* MethodName(Method method) {
  switch (method) {
    case Method::kApBaseline: return "Ap-Baseline";
    case Method::kExBaseline: return "Ex-Baseline";
    case Method::kApMinMax: return "Ap-MinMax";
    case Method::kExMinMax: return "Ex-MinMax";
    case Method::kApSuperEgo: return "Ap-SuperEGO";
    case Method::kExSuperEgo: return "Ex-SuperEGO";
    case Method::kApMinMaxEgo: return "Ap-MinMaxEGO";
    case Method::kExMinMaxEgo: return "Ex-MinMaxEGO";
    case Method::kApGridHash: return "Ap-GridHash";
    case Method::kExGridHash: return "Ex-GridHash";
  }
  return "UNKNOWN";
}

std::optional<Method> ParseMethod(const std::string& name) {
  for (const Method method : kAllMethods) {
    if (name == MethodName(method)) return method;
  }
  for (const Method method : kExtensionMethods) {
    if (name == MethodName(method)) return method;
  }
  return std::nullopt;
}

bool IsExact(Method method) {
  switch (method) {
    case Method::kExBaseline:
    case Method::kExMinMax:
    case Method::kExSuperEgo:
    case Method::kExMinMaxEgo:
    case Method::kExGridHash:
      return true;
    case Method::kApBaseline:
    case Method::kApMinMax:
    case Method::kApSuperEgo:
    case Method::kApMinMaxEgo:
    case Method::kApGridHash:
      return false;
  }
  return false;
}

JoinResult RunMethod(Method method, const Community& b, const Community& a,
                     const JoinOptions& options) {
  switch (method) {
    case Method::kApBaseline: return ApBaselineJoin(b, a, options);
    case Method::kExBaseline: return ExBaselineJoin(b, a, options);
    case Method::kApMinMax: return ApMinMaxJoin(b, a, options);
    case Method::kExMinMax: return ExMinMaxJoin(b, a, options);
    case Method::kApSuperEgo: return ApSuperEgoJoin(b, a, options);
    case Method::kExSuperEgo: return ExSuperEgoJoin(b, a, options);
    case Method::kApMinMaxEgo: return ApMinMaxEgoJoin(b, a, options);
    case Method::kExMinMaxEgo: return ExMinMaxEgoJoin(b, a, options);
    case Method::kApGridHash: return ApGridHashJoin(b, a, options);
    case Method::kExGridHash: return ExGridHashJoin(b, a, options);
  }
  return {};
}

}  // namespace csj
