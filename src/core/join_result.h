#ifndef CSJ_CORE_JOIN_RESULT_H_
#define CSJ_CORE_JOIN_RESULT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.h"

namespace csj {

/// The five events a MinMax/Baseline pairing loop can emit per user-pair
/// examination (paper §4). Kept in one enum so the trace tests can assert
/// the exact event sequences of the paper's Figures 2 and 3.
enum class Event : uint8_t {
  kMinPrune = 0,   ///< current b cannot match this or any later a
  kMaxPrune = 1,   ///< current a cannot match this or any later b
  kNoOverlap = 2,  ///< part/range filter rejected the pair (no d-dim compare)
  kNoMatch = 3,    ///< d-dimensional compare ran and failed
  kMatch = 4,      ///< d-dimensional compare ran and succeeded
};

/// Human-readable event name, matching the paper's capitalized spelling.
const char* EventName(Event event);

/// One emitted event together with the users involved (indices into B/A).
/// `a` is meaningless for kMinPrune beyond "the a that triggered it".
struct EventRecord {
  Event event;
  UserId b;
  UserId a;

  friend bool operator==(const EventRecord&, const EventRecord&) = default;
};

/// Optional event-sequence recorder. Joins accept a null pointer on the
/// fast path; the examples and trace tests pass one to replay Figures 2-3.
struct EventLog {
  std::vector<EventRecord> records;

  void Add(Event event, UserId b, UserId a) {
    records.push_back(EventRecord{event, b, a});
  }
};

/// Aggregate statistics of one join execution. Event counters are always
/// maintained (they are a handful of increments next to a d-dimensional
/// compare); `dimension_compares` counts full EpsilonMatches evaluations.
struct JoinStats {
  uint64_t min_prunes = 0;
  uint64_t max_prunes = 0;
  uint64_t no_overlaps = 0;
  uint64_t no_matches = 0;
  uint64_t matches = 0;
  uint64_t dimension_compares = 0;  ///< == no_matches + matches
  uint64_t candidate_pairs = 0;     ///< pairs handed to the matcher (exact)
  uint64_t csf_flushes = 0;         ///< CSF invocations (Ex-MinMax segments)
  uint64_t cache_hits = 0;          ///< encoding-cache lookups served
  uint64_t cache_misses = 0;        ///< encoding-cache lookups that built
  uint64_t cache_bytes_built = 0;   ///< bytes of entries this join built
  double seconds = 0.0;             ///< wall-clock of the whole join
  /// Wall-clock spent in the one-to-one matcher (the refine phase's CSF /
  /// Hopcroft-Karp calls) as the submitting thread saw it. Like `seconds`
  /// this is a timing field: excluded from Merge() and from the
  /// determinism contract.
  double matching_seconds = 0.0;

  void Count(Event event) {
    switch (event) {
      case Event::kMinPrune: ++min_prunes; break;
      case Event::kMaxPrune: ++max_prunes; break;
      case Event::kNoOverlap: ++no_overlaps; break;
      case Event::kNoMatch: ++no_matches; ++dimension_compares; break;
      case Event::kMatch: ++matches; ++dimension_compares; break;
    }
  }

  /// Folds another chunk's counters into this one (parallel joins merge
  /// their per-chunk stats; `seconds` is wall-clock and left untouched).
  void Merge(const JoinStats& other) {
    min_prunes += other.min_prunes;
    max_prunes += other.max_prunes;
    no_overlaps += other.no_overlaps;
    no_matches += other.no_matches;
    matches += other.matches;
    dimension_compares += other.dimension_compares;
    candidate_pairs += other.candidate_pairs;
    csf_flushes += other.csf_flushes;
    cache_hits += other.cache_hits;
    cache_misses += other.cache_misses;
    cache_bytes_built += other.cache_bytes_built;
  }
};

/// One matched user pair <b, a> (indices into B and A respectively).
struct MatchedPair {
  UserId b;
  UserId a;

  friend bool operator==(const MatchedPair&, const MatchedPair&) = default;
  friend auto operator<=>(const MatchedPair&, const MatchedPair&) = default;
};

/// Outcome of running one CSJ method on a couple <B, A>.
struct JoinResult {
  std::string method;               ///< e.g. "Ex-MinMax"
  std::vector<MatchedPair> pairs;   ///< the one-to-one matching found
  uint32_t size_b = 0;              ///< |B| at execution time
  JoinStats stats;

  /// similarity(B, A) = |matched_user_pairs| / |B|  (Eq. 1, p = 1; the
  /// approximate methods realize p < 1 implicitly by finding fewer pairs).
  double Similarity() const {
    if (size_b == 0) return 0.0;
    return static_cast<double>(pairs.size()) / static_cast<double>(size_b);
  }
};

}  // namespace csj

#endif  // CSJ_CORE_JOIN_RESULT_H_
