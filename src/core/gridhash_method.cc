#include "core/gridhash_method.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "core/epsilon_predicate.h"
#include "ego/dimension_reorder.h"
#include "ego/integer_grid.h"
#include "matching/matcher.h"
#include "util/logging.h"
#include "util/timer.h"

namespace csj {

namespace {

/// Epsilon-grid hash over the most selective dimensions of the couple.
class GridIndex {
 public:
  GridIndex(const Community& b, const Community& a,
            const JoinOptions& options)
      : eps_(std::max<Epsilon>(options.eps, 1)) {
    Count max_count = std::max(b.MaxCounter(), a.MaxCounter());
    if (max_count == 0) max_count = 1;
    std::vector<Dim> order =
        ego::ComputeDimensionOrder(b, a, eps_, max_count);
    const uint32_t k = std::clamp<uint32_t>(options.gridhash_dims, 1, b.d());
    dims_.assign(order.begin(), order.begin() + k);

    buckets_.reserve(a.size());
    for (UserId u = 0; u < a.size(); ++u) {
      buckets_[KeyOf(a.User(u), /*offsets=*/nullptr)].push_back(u);
    }
  }

  /// Calls `visit(a_id)` for every A user in the 3^k cells neighbouring
  /// `vec`'s cell. A hash collision can only ADD candidates (two distinct
  /// cell tuples sharing a key), never lose one, so the probe is a strict
  /// superset of the true eps-neighbourhood in the indexed dimensions.
  template <typename Visitor>
  void Probe(std::span<const Count> vec, Visitor&& visit) const {
    const auto k = static_cast<uint32_t>(dims_.size());
    std::vector<int32_t> offsets(k, -1);
    while (true) {
      const auto it = buckets_.find(KeyOf(vec, offsets.data()));
      if (it != buckets_.end()) {
        for (const UserId a : it->second) visit(a);
      }
      // Advance the {-1,0,1}^k counter.
      uint32_t pos = 0;
      while (pos < k && offsets[pos] == 1) offsets[pos++] = -1;
      if (pos == k) break;
      ++offsets[pos];
    }
  }

 private:
  /// Mixes the (optionally offset) cell coordinates of the indexed
  /// dimensions into one 64-bit key.
  uint64_t KeyOf(std::span<const Count> vec, const int32_t* offsets) const {
    uint64_t key = 0x9E3779B97F4A7C15ULL;
    for (size_t i = 0; i < dims_.size(); ++i) {
      int64_t cell = ego::IntegerCellOf(vec[dims_[i]], eps_);
      if (offsets != nullptr) cell += offsets[i];
      key ^= static_cast<uint64_t>(cell) + 0x9E3779B97F4A7C15ULL +
             (key << 6) + (key >> 2);
    }
    return key;
  }

  Epsilon eps_;
  std::vector<Dim> dims_;
  std::unordered_map<uint64_t, std::vector<UserId>> buckets_;
};

}  // namespace

JoinResult ApGridHashJoin(const Community& b, const Community& a,
                          const JoinOptions& options) {
  CSJ_CHECK_EQ(b.d(), a.d());
  util::Timer timer;
  JoinResult result;
  result.method = "Ap-GridHash";
  result.size_b = b.size();
  if (b.empty() || a.empty()) {
    result.stats.seconds = timer.Seconds();
    return result;
  }

  const GridIndex index(b, a, options);
  std::vector<bool> used_a(a.size(), false);
  for (UserId ib = 0; ib < b.size(); ++ib) {
    const std::span<const Count> vb = b.User(ib);
    bool matched = false;
    index.Probe(vb, [&](UserId ia) {
      if (matched || used_a[ia]) return;
      const bool match = EpsilonMatches(vb, a.User(ia), options.eps);
      result.stats.Count(match ? Event::kMatch : Event::kNoMatch);
      if (match) {
        result.pairs.push_back(MatchedPair{ib, ia});
        used_a[ia] = true;
        matched = true;  // approximate rule: first match ends this b
      }
    });
  }

  result.stats.seconds = timer.Seconds();
  return result;
}

JoinResult ExGridHashJoin(const Community& b, const Community& a,
                          const JoinOptions& options) {
  CSJ_CHECK_EQ(b.d(), a.d());
  util::Timer timer;
  JoinResult result;
  result.method = "Ex-GridHash";
  result.size_b = b.size();
  if (b.empty() || a.empty()) {
    result.stats.seconds = timer.Seconds();
    return result;
  }

  const GridIndex index(b, a, options);
  std::vector<MatchedPair> candidates;
  for (UserId ib = 0; ib < b.size(); ++ib) {
    const std::span<const Count> vb = b.User(ib);
    index.Probe(vb, [&](UserId ia) {
      const bool match = EpsilonMatches(vb, a.User(ia), options.eps);
      result.stats.Count(match ? Event::kMatch : Event::kNoMatch);
      if (match) candidates.push_back(MatchedPair{ib, ia});
    });
  }

  result.stats.candidate_pairs = candidates.size();
  result.stats.csf_flushes = 1;
  util::Timer match_timer;
  result.pairs = matching::RunMatcher(options.matcher, candidates);
  result.stats.matching_seconds = match_timer.Seconds();
  result.stats.seconds = timer.Seconds();
  return result;
}

}  // namespace csj
