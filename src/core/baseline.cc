#include "core/baseline.h"

#include <algorithm>
#include <vector>

#include "core/epsilon_predicate.h"
#include "core/join_scratch.h"
#include "matching/matcher.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace csj {

JoinResult ApBaselineJoin(const Community& b, const Community& a,
                          const JoinOptions& options) {
  CSJ_CHECK_EQ(b.d(), a.d());
  util::Timer timer;
  JoinResult result;
  result.method = "Ap-Baseline";
  result.size_b = b.size();

  const uint32_t nb = b.size();
  const uint32_t na = a.size();
  // Reused across joins: repeated screening calls stop re-allocating.
  std::vector<uint8_t>& used_a = internal::GetJoinScratch().used_a;
  used_a.assign(na, 0);
  uint32_t offset = 0;
  for (UserId ib = 0; ib < nb; ++ib) {
    const std::span<const Count> vb = b.User(ib);
    bool skip = true;
    for (UserId ia = offset; ia < na; ++ia) {
      if (used_a[ia]) {
        // A contiguous prefix of matched users can be skipped for every
        // later b; once an unmatched a has been seen (skip == false) the
        // offset is pinned behind it.
        if (skip) offset = ia + 1;
        continue;
      }
      skip = false;
      const Event event = EpsilonMatches(vb, a.User(ia), options.eps)
                              ? Event::kMatch
                              : Event::kNoMatch;
      result.stats.Count(event);
      if (options.event_log != nullptr) options.event_log->Add(event, ib, ia);
      if (event == Event::kMatch) {
        result.pairs.push_back(MatchedPair{ib, ia});
        used_a[ia] = 1;
        break;  // approximate rule: first match ends this b's processing
      }
    }
  }

  result.stats.seconds = timer.Seconds();
  return result;
}

JoinResult ExBaselineJoin(const Community& b, const Community& a,
                          const JoinOptions& options) {
  CSJ_CHECK_EQ(b.d(), a.d());
  util::Timer timer;
  JoinResult result;
  result.method = "Ex-Baseline";
  result.size_b = b.size();

  const uint32_t nb = b.size();
  const uint32_t na = a.size();

  // Candidate collection partitions B's rows; chunk-local buffers are
  // concatenated in chunk order so any thread count yields the serial
  // result. Event logging pins the run to one chunk.
  const uint32_t threads =
      options.event_log != nullptr ? 1 : std::max<uint32_t>(options.threads, 1);
  const uint32_t chunks = util::ParallelChunks(0, nb, threads);
  std::vector<std::vector<MatchedPair>> chunk_candidates(chunks);
  std::vector<JoinStats> chunk_stats(chunks);
  util::ParallelFor(
      0, nb, threads,
      [&](uint32_t chunk_begin, uint32_t chunk_end, uint32_t chunk) {
        std::vector<MatchedPair>& local = chunk_candidates[chunk];
        JoinStats& stats = chunk_stats[chunk];
        for (UserId ib = chunk_begin; ib < chunk_end; ++ib) {
          const std::span<const Count> vb = b.User(ib);
          for (UserId ia = 0; ia < na; ++ia) {
            const Event event = EpsilonMatches(vb, a.User(ia), options.eps)
                                    ? Event::kMatch
                                    : Event::kNoMatch;
            stats.Count(event);
            if (options.event_log != nullptr) {
              options.event_log->Add(event, ib, ia);
            }
            if (event == Event::kMatch) local.push_back(MatchedPair{ib, ia});
          }
        }
      });

  // Chunk-order merge into per-thread scratch: byte-identical to the
  // serial run, no allocation after the first join warms the capacity.
  std::vector<MatchedPair>& candidates = internal::GetJoinScratch().candidates;
  candidates.clear();
  for (uint32_t chunk = 0; chunk < chunks; ++chunk) {
    result.stats.Merge(chunk_stats[chunk]);
    candidates.insert(candidates.end(), chunk_candidates[chunk].begin(),
                      chunk_candidates[chunk].end());
  }

  result.stats.candidate_pairs = candidates.size();
  result.stats.csf_flushes = 1;
  result.pairs = matching::RunMatcher(options.matcher, candidates);
  result.stats.seconds = timer.Seconds();
  return result;
}

}  // namespace csj
