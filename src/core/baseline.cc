#include "core/baseline.h"

#include <algorithm>
#include <bit>
#include <memory>
#include <vector>

#include "core/encoding_cache.h"
#include "core/epsilon_predicate.h"
#include "core/join_scratch.h"
#include "matching/matcher.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace csj {

namespace {

/// A's counters as a natural-order SoA window for batched verification:
/// from the cache when one is wired (built once per community), else
/// repacked into this thread's scratch window (one O(n*d) pass — noise
/// next to the O(nb*na*d) scan it accelerates).
const VerifyWindow* AcquireBaselineWindow(
    const Community& a, const JoinOptions& options,
    std::shared_ptr<const VerifyWindow>* keepalive, JoinStats* stats) {
  if (options.cache != nullptr) {
    *keepalive = options.cache->GetCommunityWindow(a, DigestCommunity(a),
                                                   stats);
    return keepalive->get();
  }
  VerifyWindow& window = internal::GetJoinScratch().window;
  window.Assign(a.size(), a.d(), [&](uint32_t i) { return a.User(i); });
  return &window;
}

}  // namespace

JoinResult ApBaselineJoin(const Community& b, const Community& a,
                          const JoinOptions& options) {
  CSJ_CHECK_EQ(b.d(), a.d());
  util::Timer timer;
  JoinResult result;
  result.method = "Ap-Baseline";
  result.size_b = b.size();

  const uint32_t nb = b.size();
  const uint32_t na = a.size();
  // Reused across joins: repeated screening calls stop re-allocating.
  std::vector<uint8_t>& used_a = internal::GetJoinScratch().used_a;
  used_a.assign(na, 0);

  const bool batched = options.batch_verify && na >= kEpsilonBlock;
  std::shared_ptr<const VerifyWindow> keepalive;
  const VerifyWindow* window =
      batched ? AcquireBaselineWindow(a, options, &keepalive, &result.stats)
              : nullptr;
  LazyBatchVerifier<Count, Epsilon> verifier;

  uint32_t offset = 0;
  for (UserId ib = 0; ib < nb; ++ib) {
    const std::span<const Count> vb = b.User(ib);
    if (batched) verifier.Start(*window, vb, options.eps, na);
    bool skip = true;
    for (UserId ia = offset; ia < na; ++ia) {
      if (used_a[ia]) {
        // A contiguous prefix of matched users can be skipped for every
        // later b; once an unmatched a has been seen (skip == false) the
        // offset is pinned behind it.
        if (skip) offset = ia + 1;
        continue;
      }
      skip = false;
      const bool match = batched
                             ? verifier.Matches(ia)
                             : EpsilonMatches(vb, a.User(ia), options.eps);
      const Event event = match ? Event::kMatch : Event::kNoMatch;
      result.stats.Count(event);
      if (options.event_log != nullptr) options.event_log->Add(event, ib, ia);
      if (event == Event::kMatch) {
        result.pairs.push_back(MatchedPair{ib, ia});
        used_a[ia] = 1;
        break;  // approximate rule: first match ends this b's processing
      }
    }
  }

  result.stats.seconds = timer.Seconds();
  return result;
}

JoinResult ExBaselineJoin(const Community& b, const Community& a,
                          const JoinOptions& options) {
  CSJ_CHECK_EQ(b.d(), a.d());
  util::Timer timer;
  JoinResult result;
  result.method = "Ex-Baseline";
  result.size_b = b.size();

  const uint32_t nb = b.size();
  const uint32_t na = a.size();

  // Candidate collection partitions B's rows; per-chunk arena buffers are
  // concatenated in chunk order so any thread count yields the serial
  // result. Event logging pins the run to one chunk and (because events
  // must flow one pair at a time) disables batching.
  const uint32_t threads = options.event_log != nullptr
                               ? 1
                               : std::max<uint32_t>(options.join_threads, 1);
  const bool batched = options.batch_verify &&
                       options.event_log == nullptr && na >= kEpsilonBlock;
  std::shared_ptr<const VerifyWindow> keepalive;
  const VerifyWindow* window =
      batched ? AcquireBaselineWindow(a, options, &keepalive, &result.stats)
              : nullptr;

  const uint32_t chunks = util::ParallelChunks(0, nb, threads);
  const std::span<internal::ChunkSlot> slots =
      internal::GetJoinScratch().chunk_arenas.Acquire(chunks);
  util::ParallelFor(
      0, nb, threads,
      [&](uint32_t chunk_begin, uint32_t chunk_end, uint32_t chunk) {
        std::vector<MatchedPair>& local = slots[chunk].edges;
        JoinStats& stats = slots[chunk].stats;
        if (batched) {
          // Exact baseline wants every verdict of the row anyway, so the
          // whole row is one kernel call; survivors come back as a
          // bitmask walked in ascending ia order (identical pair order),
          // and the event tallies collapse to popcounts.
          const uint32_t words = (na + 63) / 64;
          std::vector<uint64_t>& mask = internal::GetJoinScratch().mask;
          mask.resize(words);
          for (UserId ib = chunk_begin; ib < chunk_end; ++ib) {
            EpsilonMatchesMany(b.User(ib), *window, 0, na, options.eps,
                               mask.data());
            uint64_t found = 0;
            for (uint32_t w = 0; w < words; ++w) {
              uint64_t word = mask[w];
              found += static_cast<uint64_t>(std::popcount(word));
              while (word != 0) {
                const UserId ia =
                    w * 64 + static_cast<uint32_t>(std::countr_zero(word));
                local.push_back(MatchedPair{ib, ia});
                word &= word - 1;
              }
            }
            stats.matches += found;
            stats.no_matches += na - found;
            stats.dimension_compares += na;
          }
          return;
        }
        for (UserId ib = chunk_begin; ib < chunk_end; ++ib) {
          const std::span<const Count> vb = b.User(ib);
          for (UserId ia = 0; ia < na; ++ia) {
            const Event event = EpsilonMatches(vb, a.User(ia), options.eps)
                                    ? Event::kMatch
                                    : Event::kNoMatch;
            stats.Count(event);
            if (options.event_log != nullptr) {
              options.event_log->Add(event, ib, ia);
            }
            if (event == Event::kMatch) local.push_back(MatchedPair{ib, ia});
          }
        }
      },
      options.pool);

  // Chunk-order merge into per-thread scratch: byte-identical to the
  // serial run, no allocation after the first join warms the capacity.
  std::vector<MatchedPair>& candidates = internal::GetJoinScratch().candidates;
  candidates.clear();
  for (uint32_t chunk = 0; chunk < chunks; ++chunk) {
    result.stats.Merge(slots[chunk].stats);
    candidates.insert(candidates.end(), slots[chunk].edges.begin(),
                      slots[chunk].edges.end());
  }

  result.stats.candidate_pairs = candidates.size();
  result.stats.csf_flushes = 1;
  util::Timer match_timer;
  result.pairs = matching::RunMatcher(options.matcher, candidates);
  result.stats.matching_seconds = match_timer.Seconds();
  result.stats.seconds = timer.Seconds();
  return result;
}

}  // namespace csj
