#ifndef CSJ_CORE_COLUMN_STORAGE_H_
#define CSJ_CORE_COLUMN_STORAGE_H_

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

namespace csj {

/// One immutable column of a derived artifact (encoded-buffer ids, part
/// sums, sketch tables): either a vector the object OWNS (the build
/// path) or a BORROWED view into externally-owned memory (the persist
/// path, where the column bytes live in a mapped segment file and must
/// not be copied). Accessors are raw-pointer reads either way, so the
/// join kernels see identical code for both modes.
///
/// Lifetime: a view does NOT pin its backing memory — the object that
/// aggregates the columns holds one keep-alive `shared_ptr` for the
/// whole mapping (one refcount per artifact instead of one per column).
///
/// The cached data pointer is rebound on copy/move instead of branching
/// per access: `data()` must stay a single load for the scan loops.
template <typename T>
class ColumnStorage {
 public:
  ColumnStorage() = default;

  /// Owning mode: adopts the vector.
  /*implicit*/ ColumnStorage(std::vector<T> owned)
      : owned_(std::move(owned)),
        data_(owned_.data()),
        size_(owned_.size()) {}

  /// Borrowing mode: a view of `size` elements at `data` (externally
  /// owned and immutable for this object's lifetime).
  static ColumnStorage View(const T* data, size_t size) {
    ColumnStorage column;
    column.data_ = data;
    column.size_ = size;
    column.viewing_ = true;
    return column;
  }

  ColumnStorage(const ColumnStorage& other)
      : owned_(other.owned_), viewing_(other.viewing_) {
    Rebind(other);
  }
  ColumnStorage& operator=(const ColumnStorage& other) {
    if (this != &other) {
      owned_ = other.owned_;
      viewing_ = other.viewing_;
      Rebind(other);
    }
    return *this;
  }
  // Moving a vector keeps its heap buffer, so the source's data pointer
  // stays valid for the destination in both modes.
  ColumnStorage(ColumnStorage&& other) noexcept
      : owned_(std::move(other.owned_)),
        data_(other.data_),
        size_(other.size_),
        viewing_(other.viewing_) {
    other.data_ = nullptr;
    other.size_ = 0;
  }
  ColumnStorage& operator=(ColumnStorage&& other) noexcept {
    if (this != &other) {
      owned_ = std::move(other.owned_);
      data_ = other.data_;
      size_ = other.size_;
      viewing_ = other.viewing_;
      other.data_ = nullptr;
      other.size_ = 0;
    }
    return *this;
  }

  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool viewing() const { return viewing_; }
  const T& operator[](size_t i) const { return data_[i]; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  std::span<const T> span() const { return {data_, size_}; }

  /// Heap bytes owned by THIS object (0 in borrowing mode — the mapped
  /// bytes are accounted by whoever owns the mapping).
  size_t OwnedBytes() const { return owned_.capacity() * sizeof(T); }

 private:
  void Rebind(const ColumnStorage& other) {
    if (viewing_) {
      data_ = other.data_;
      size_ = other.size_;
    } else {
      data_ = owned_.data();
      size_ = owned_.size();
    }
  }

  std::vector<T> owned_;
  const T* data_ = nullptr;
  size_t size_ = 0;
  bool viewing_ = false;
};

}  // namespace csj

#endif  // CSJ_CORE_COLUMN_STORAGE_H_
