#ifndef CSJ_CORE_JOIN_OPTIONS_H_
#define CSJ_CORE_JOIN_OPTIONS_H_

#include <cstdint>

#include "core/join_result.h"
#include "core/types.h"
#include "matching/matcher.h"

namespace csj {

class EncodingCache;

namespace util {
class ThreadPool;
}  // namespace util

/// Knobs shared by all six CSJ methods. Defaults reproduce the paper's
/// configuration (4 encoding parts, CSF matcher, serial SuperEGO).
struct JoinOptions {
  /// The per-dimension absolute-difference threshold (paper: 1 for VK,
  /// 15000 for Synthetic).
  Epsilon eps = 1;

  /// Number of parts in the MinMax encoding (paper §4: 4 is the best
  /// time/space tradeoff; bench_ablation_parts sweeps this).
  uint32_t encoding_parts = 4;

  /// One-to-one matcher used by the exact methods. kCsf is the paper's
  /// algorithm; kMaxMatching upgrades to Hopcroft-Karp (an extension).
  matching::MatcherKind matcher = matching::MatcherKind::kCsf;

  /// SuperEGO recursion threshold `t`: segments smaller than this are
  /// joined with the nested loop.
  uint32_t superego_threshold = 256;

  /// Enable SuperEGO's data-driven dimension reordering.
  bool superego_reorder_dims = true;

  /// Normalization denominator for SuperEGO (the paper divides by the
  /// dataset-wide maximum counter: 152,532 for VK, 500,000 for Synthetic).
  /// 0 means "use the couple's own maximum counter".
  Count superego_norm_max = 0;

  /// For the GridHash methods: how many (most selective) dimensions the
  /// epsilon-grid hash indexes. Probe cost grows as 3^dims; pruning power
  /// saturates quickly on skewed data.
  uint32_t gridhash_dims = 3;

  /// For the MinMaxEGO hybrid methods: apply the MinMax encoded filter
  /// (encoded-id window + part-range overlap) inside each EGO leaf before
  /// the d-dimensional comparison. false degenerates to a plain
  /// integer-grid SuperEGO, the other arm of bench_ablation_hybrid.
  bool hybrid_encoded_leaf = true;

  /// Worker threads INSIDE one join: the candidate-collection (scan +
  /// verify) phase of the exact methods partitions its probe work into
  /// contiguous chunks — Ex-MinMax and Ex-Baseline over B's rows,
  /// Ex-SuperEGO and Ex-MinMaxEGO over their surviving EGO leaves — and
  /// runs the chunks on the persistent thread pool, each chunk writing
  /// candidate edges into a per-chunk arena. A deterministic merge
  /// concatenates arenas in chunk order (and, for Ex-MinMax, replays the
  /// segment-close rule over the merged edge stream), so the candidate
  /// graph handed to CSF/greedy matching — and hence pairs, similarity
  /// and the summed event counters — is byte-identical to the serial run
  /// for ANY value here. The paper's evaluation pinned 1 thread for
  /// fairness, and so does our default. The approximate methods are
  /// order-dependent greedy scans and always run serially; event logging
  /// also forces serial execution (traces need per-candidate order).
  uint32_t join_threads = 1;

  /// Worker threads for the refine-phase one-to-one matching. Ex-MinMax
  /// flushes many independent CSF segments per join; with a value > 1 the
  /// join defers each flushed segment into a SegmentMatchFarm and runs
  /// them as individual tasks on the persistent pool instead of matching
  /// inline. Matched pairs are appended in SEGMENT ORDER and each matcher
  /// is deterministic on its own segment, so pairs, `candidate_pairs`,
  /// `csf_flushes` and every other counter are byte-identical to the
  /// serial run for ANY value here. The single-segment exact methods
  /// (Ex-Baseline, Ex-SuperEGO, Ex-MinMaxEGO, Ex-GridHash) run one
  /// matcher call and are unaffected; so are the approximate methods
  /// (no matcher at all). Composes with `join_threads`: the scan chunks
  /// and the segment tasks share the same pool, and the pipeline budgets
  /// both through NestedJoinThreads.
  uint32_t matching_threads = 1;

  /// Pool the intra-join chunks and deferred segment matchings run on;
  /// null = ThreadPool::Global(). Injection seam for tests and embedders
  /// (a join called from inside a pool task degrades to an inline loop
  /// either way, so nesting under pipeline_threads never oversubscribes).
  util::ThreadPool* pool = nullptr;

  /// Optional community-level encoded-buffer cache. When set, the methods
  /// fetch their per-community preparation (EncodedB/EncodedA, Baseline
  /// SoA windows, SuperEGO normalization + segment trees + dimension
  /// orders) from it instead of rebuilding per couple; results are
  /// byte-identical either way. Not owned; must outlive the join. The
  /// hybrid/GridHash grids are couple-shaped and stay uncached.
  EncodingCache* cache = nullptr;

  /// Use the 1-vs-many batched verify kernel (EpsilonMatchesMany) on
  /// candidate runs of >= kEpsilonBlock instead of per-pair
  /// EpsilonMatches calls. Verdicts are identical; this only changes how
  /// the d-dimensional compares are scheduled. Exposed as a switch so the
  /// tests and benches can difference the two paths.
  bool batch_verify = true;

  /// Optional event recorder (MinMax/Baseline only); null on the fast path.
  EventLog* event_log = nullptr;
};

}  // namespace csj

#endif  // CSJ_CORE_JOIN_OPTIONS_H_
