#ifndef CSJ_CORE_EPSILON_PREDICATE_H_
#define CSJ_CORE_EPSILON_PREDICATE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "core/types.h"

namespace csj {

namespace internal {

/// std::allocator whose construct() DEFAULT-initializes value-less
/// elements instead of VALUE-initializing them: vector::resize stops
/// zero-filling trivial element types. Only for containers whose owner
/// overwrites every element itself (BasicVerifyWindow::Assign does) —
/// resized-in elements hold garbage until then.
template <typename T>
class DefaultInitAllocator : public std::allocator<T> {
 public:
  template <typename U>
  struct rebind {
    using other = DefaultInitAllocator<U>;
  };
  using std::allocator<T>::allocator;
  template <typename U, typename... Args>
  void construct(U* p, Args&&... args) {
    if constexpr (sizeof...(Args) == 0) {
      ::new (static_cast<void*>(p)) U;
    } else {
      ::new (static_cast<void*>(p)) U(std::forward<Args>(args)...);
    }
  }
};

}  // namespace internal

/// Vectorization block of EpsilonMatches. Eight 32-bit counters fill two
/// SSE registers (one AVX2 register); the kernel accumulates whole
/// multiples of this width branchlessly so the auto-vectorizer maps the
/// loop onto packed min/max ops.
inline constexpr size_t kEpsilonBlock = 8;

/// Early-exit granularity of EpsilonMatches: the accumulated worst
/// difference is tested against eps once per this many dimensions. A
/// horizontal vector reduction is expensive relative to the packed
/// min/max work, so testing per 8-wide block would eat the vector win;
/// testing per 32 keeps the reduction cost amortized while bounding the
/// work wasted on an early-diverging pair.
inline constexpr size_t kEpsilonSuperBlock = 32;

/// The CSJ match condition (paper §3): two users match iff
/// |b_i - a_i| <= eps for EVERY dimension i — an L-infinity test, not an
/// aggregated distance.
///
/// Dimensions are processed in fixed-width blocks: super-blocks of
/// kEpsilonSuperBlock accumulate the largest per-dimension difference
/// with branchless min/max arithmetic (no data-dependent branches inside
/// a super-block, so the loop auto-vectorizes at kEpsilonBlock lanes)
/// and a single compare rejects the pair at the first violating
/// super-block. The remaining whole kEpsilonBlock blocks are accumulated
/// the same way under one test, and the scalar tail handles
/// `d mod kEpsilonBlock`.
///
/// Defined out of line so the translation unit can be function-
/// multiversioned: on x86-64 ELF toolchains the kernel is cloned for
/// SSE4.2/AVX2/AVX-512 and dispatched by cpuid at load time, giving the
/// wide-vector code path without changing the build's baseline -march.
bool EpsilonMatches(std::span<const Count> b, std::span<const Count> a,
                    Epsilon eps);

/// A candidate window in SoA, dimension-blocked layout for the 1-vs-many
/// batched verification kernel (EpsilonMatchesMany).
///
/// Candidates are grouped into blocks of kEpsilonBlock (8); inside a block
/// the layout is dimension-major: the 8 candidates' values of dimension k
/// sit contiguously, so the kernel loads one full vector register per
/// dimension and broadcasts the probe's value against it — no horizontal
/// reduction, no strided row gathers. The last block is padded with T{}
/// lanes; padded lanes are computed but their result bits are never
/// emitted.
///
/// value(i, k) lives at data[(i / 8) * 8 * d + k * 8 + (i % 8)].
template <typename T>
class BasicVerifyWindow {
 public:
  BasicVerifyWindow() = default;

  // The packed values are read through a cached raw pointer so the
  // kernel sees one code path whether the window OWNS its buffer
  // (Assign) or BORROWS mapped segment bytes (AssignView). Copies
  // rebind the pointer; moves keep the vector's heap buffer, so the
  // defaults are correct for them.
  BasicVerifyWindow(const BasicVerifyWindow& other)
      : n_(other.n_), d_(other.d_), data_(other.data_), owner_(other.owner_) {
    ptr_ = other.Borrowing() ? other.ptr_ : data_.data();
  }
  BasicVerifyWindow& operator=(const BasicVerifyWindow& other) {
    if (this != &other) {
      n_ = other.n_;
      d_ = other.d_;
      data_ = other.data_;
      owner_ = other.owner_;
      ptr_ = other.Borrowing() ? other.ptr_ : data_.data();
    }
    return *this;
  }
  BasicVerifyWindow(BasicVerifyWindow&&) = default;
  BasicVerifyWindow& operator=(BasicVerifyWindow&&) = default;

  uint32_t size() const { return n_; }
  Dim d() const { return d_; }
  bool empty() const { return n_ == 0; }

  /// Packed element count of an (n, d) window: whole blocks of
  /// kEpsilonBlock lanes, the last one padded. Serialization sizes its
  /// on-disk window blobs with exactly this.
  static size_t PaddedCount(uint32_t n, Dim d) {
    const size_t blocks =
        (static_cast<size_t>(n) + kEpsilonBlock - 1) / kEpsilonBlock;
    return blocks * kEpsilonBlock * d;
  }

  /// First value of block `g` (the 8 lane values of dimension 0).
  const T* BlockData(uint32_t g) const {
    return ptr_ + static_cast<size_t>(g) * kEpsilonBlock * d_;
  }

  /// One candidate's value of one dimension (tests / debugging; the
  /// kernel walks BlockData directly).
  T Value(uint32_t i, Dim k) const {
    return ptr_[(static_cast<size_t>(i) / kEpsilonBlock) * kEpsilonBlock *
                    d_ +
                static_cast<size_t>(k) * kEpsilonBlock + i % kEpsilonBlock];
  }

  /// Adopts an ALREADY-PACKED window of PaddedCount(n, d) values at
  /// `data` (this class's exact block-major layout, e.g. a mapped
  /// segment's window section), kept alive by `owner`. Zero-copy: the
  /// kernel reads the mapped bytes directly.
  void AssignView(uint32_t n, Dim d, const T* data,
                  std::shared_ptr<const void> owner) {
    n_ = n;
    d_ = d;
    data_.clear();
    data_.shrink_to_fit();
    ptr_ = data;
    owner_ = std::move(owner);
  }

  /// (Re)packs the window from `n` rows of `d` values each; `row(i)` must
  /// return a span of exactly `d` values. Reuses the existing buffer's
  /// capacity, so a scratch window costs no allocation after warm-up.
  template <typename RowFn>
  void Assign(uint32_t n, Dim d, RowFn&& row) {
    n_ = n;
    d_ = d;
    const size_t blocks = (static_cast<size_t>(n) + kEpsilonBlock - 1) /
                          kEpsilonBlock;
    // The default-init allocator makes this resize allocation-only; the
    // block-major loop below writes every slot exactly once (real lanes
    // from the rows, padding lanes T{}) in one sequential output pass —
    // no zero-fill-then-scatter double write.
    data_.resize(blocks * kEpsilonBlock * d);
    for (size_t g = 0; g < blocks; ++g) {
      T* base = data_.data() + g * kEpsilonBlock * d;
      const uint32_t first = static_cast<uint32_t>(g * kEpsilonBlock);
      const uint32_t lanes =
          std::min<uint32_t>(kEpsilonBlock, n - first);
      std::span<const T> rows[kEpsilonBlock];
      for (uint32_t l = 0; l < lanes; ++l) rows[l] = row(first + l);
      for (Dim k = 0; k < d; ++k) {
        T* lane = base + static_cast<size_t>(k) * kEpsilonBlock;
        uint32_t l = 0;
        for (; l < lanes; ++l) lane[l] = rows[l][k];
        for (; l < kEpsilonBlock; ++l) lane[l] = T{};
      }
    }
    ptr_ = data_.data();
    owner_.reset();
  }

  /// Approximate heap footprint (the cache's memory accounting; a
  /// borrowed window owns no heap — the mapping is accounted once by
  /// its owner).
  size_t MemoryBytes() const { return data_.capacity() * sizeof(T); }

 private:
  bool Borrowing() const { return ptr_ != nullptr && data_.empty(); }

  uint32_t n_ = 0;
  Dim d_ = 0;
  std::vector<T, internal::DefaultInitAllocator<T>> data_;
  const T* ptr_ = nullptr;
  std::shared_ptr<const void> owner_;
};

/// Integer-domain window (Community counters, EncodedA order, hybrid
/// grids) and the float window of SuperEGO's normalized rows.
using VerifyWindow = BasicVerifyWindow<Count>;
using VerifyWindowF = BasicVerifyWindow<float>;

/// The 1-vs-many batched verify kernel: tests `b` against every window
/// candidate in [begin, end) and writes a survivor bitmask — bit (i -
/// begin) of `mask` is 1 iff candidate i eps-matches b. `mask` must hold
/// ceil((end - begin) / 64) words; the kernel zeroes them first.
///
/// Verdicts are EXACTLY EpsilonMatches(b, candidate, eps) — the integer
/// arithmetic is identical, so callers may mix the two paths freely (the
/// joins do: batched on long candidate runs, per-pair on short ones).
/// Dispatch matches EpsilonMatches: SSE4.2/AVX2/AVX-512 function
/// multiversioning on x86-64 ELF builds.
void EpsilonMatchesMany(std::span<const Count> b, const VerifyWindow& window,
                        uint32_t begin, uint32_t end, Epsilon eps,
                        uint64_t* mask);

/// Float-domain batched verify for SuperEGO leaves: bit i-begin is 1 iff
/// every dimension's |b_k - candidate_k| <= eps_norm, bit-identical to
/// ego::EpsMatchesFloat (float max and subtraction are exact here).
void EpsilonMatchesManyFloat(std::span<const float> b,
                             const VerifyWindowF& window, uint32_t begin,
                             uint32_t end, float eps_norm, uint64_t* mask);

namespace internal {

inline void MatchManyDispatch(std::span<const Count> b,
                              const VerifyWindow& window, uint32_t begin,
                              uint32_t end, Epsilon eps, uint64_t* mask) {
  EpsilonMatchesMany(b, window, begin, end, eps, mask);
}

inline void MatchManyDispatch(std::span<const float> b,
                              const VerifyWindowF& window, uint32_t begin,
                              uint32_t end, float eps_norm, uint64_t* mask) {
  EpsilonMatchesManyFloat(b, window, begin, end, eps_norm, mask);
}

}  // namespace internal

/// Chunked adapter from the scan loops' one-candidate-at-a-time shape to
/// the batched kernel: the first Matches(i) query inside an uncovered
/// block batch-verifies that candidate's whole SoA block (kEpsilonBlock
/// lanes, block-aligned so the kernel touches exactly one block) and
/// later queries read bits. One block costs about one scalar verify — the
/// packed ops cover all 8 lanes per dimension step — so sparse scans
/// (heavy NO-OVERLAP filtering, first-match early exit) roughly break
/// even while dense scans collect the full lane win. `limit` caps the
/// chunk at the end of the reachable run so narrow encoded windows don't
/// over-verify.
template <typename T, typename EpsT>
class LazyBatchVerifier {
 public:
  static constexpr uint32_t kChunk = static_cast<uint32_t>(kEpsilonBlock);

  /// Begins a new probe scan. Queries must stay in [0, limit).
  void Start(const BasicVerifyWindow<T>& window, std::span<const T> b,
             EpsT eps, uint32_t limit) {
    window_ = &window;
    b_ = b;
    eps_ = eps;
    limit_ = std::min(limit, window.size());
    chunk_begin_ = 0;
    chunk_end_ = 0;
  }

  /// Verdict for candidate i (== EpsilonMatches against window row i).
  bool Matches(uint32_t i) {
    if (i < chunk_begin_ || i >= chunk_end_) {
      chunk_begin_ = i & ~(kChunk - 1);  // block-aligned
      chunk_end_ = std::min(chunk_begin_ + kChunk, limit_);
      internal::MatchManyDispatch(b_, *window_, chunk_begin_, chunk_end_,
                                  eps_, &mask_);
    }
    return (mask_ >> (i - chunk_begin_)) & 1u;
  }

 private:
  const BasicVerifyWindow<T>* window_ = nullptr;
  std::span<const T> b_;
  EpsT eps_{};
  uint32_t limit_ = 0;
  uint32_t chunk_begin_ = 0;
  uint32_t chunk_end_ = 0;
  uint64_t mask_ = 0;
};

/// Chebyshev (L-infinity) distance between two counter vectors; the CSJ
/// condition is exactly `ChebyshevDistance(b, a) <= eps`. Deliberately
/// kept as the straightforward scalar loop: it is the independent oracle
/// the tests validate the blocked EpsilonMatches against.
inline Count ChebyshevDistance(std::span<const Count> b,
                               std::span<const Count> a) {
  Count worst = 0;
  const size_t d = b.size();
  for (size_t i = 0; i < d; ++i) {
    const Count lo = b[i] < a[i] ? b[i] : a[i];
    const Count hi = b[i] < a[i] ? a[i] : b[i];
    const Count diff = hi - lo;
    if (diff > worst) worst = diff;
  }
  return worst;
}

}  // namespace csj

#endif  // CSJ_CORE_EPSILON_PREDICATE_H_
