#ifndef CSJ_CORE_EPSILON_PREDICATE_H_
#define CSJ_CORE_EPSILON_PREDICATE_H_

#include <span>

#include "core/types.h"

namespace csj {

/// The CSJ match condition (paper §3): two users match iff
/// |b_i - a_i| <= eps for EVERY dimension i — an L-infinity test, not an
/// aggregated distance. Short-circuits on the first violating dimension,
/// which is what makes the NO MATCH event cheap in practice.
inline bool EpsilonMatches(std::span<const Count> b, std::span<const Count> a,
                           Epsilon eps) {
  const size_t d = b.size();
  for (size_t i = 0; i < d; ++i) {
    const Count lo = b[i] < a[i] ? b[i] : a[i];
    const Count hi = b[i] < a[i] ? a[i] : b[i];
    if (hi - lo > eps) return false;
  }
  return true;
}

/// Chebyshev (L-infinity) distance between two counter vectors; the CSJ
/// condition is exactly `ChebyshevDistance(b, a) <= eps`. Used by tests as
/// an independent oracle for EpsilonMatches.
inline Count ChebyshevDistance(std::span<const Count> b,
                               std::span<const Count> a) {
  Count worst = 0;
  const size_t d = b.size();
  for (size_t i = 0; i < d; ++i) {
    const Count lo = b[i] < a[i] ? b[i] : a[i];
    const Count hi = b[i] < a[i] ? a[i] : b[i];
    const Count diff = hi - lo;
    if (diff > worst) worst = diff;
  }
  return worst;
}

}  // namespace csj

#endif  // CSJ_CORE_EPSILON_PREDICATE_H_
