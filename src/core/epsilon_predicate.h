#ifndef CSJ_CORE_EPSILON_PREDICATE_H_
#define CSJ_CORE_EPSILON_PREDICATE_H_

#include <cstddef>
#include <span>

#include "core/types.h"

namespace csj {

/// Vectorization block of EpsilonMatches. Eight 32-bit counters fill two
/// SSE registers (one AVX2 register); the kernel accumulates whole
/// multiples of this width branchlessly so the auto-vectorizer maps the
/// loop onto packed min/max ops.
inline constexpr size_t kEpsilonBlock = 8;

/// Early-exit granularity of EpsilonMatches: the accumulated worst
/// difference is tested against eps once per this many dimensions. A
/// horizontal vector reduction is expensive relative to the packed
/// min/max work, so testing per 8-wide block would eat the vector win;
/// testing per 32 keeps the reduction cost amortized while bounding the
/// work wasted on an early-diverging pair.
inline constexpr size_t kEpsilonSuperBlock = 32;

/// The CSJ match condition (paper §3): two users match iff
/// |b_i - a_i| <= eps for EVERY dimension i — an L-infinity test, not an
/// aggregated distance.
///
/// Dimensions are processed in fixed-width blocks: super-blocks of
/// kEpsilonSuperBlock accumulate the largest per-dimension difference
/// with branchless min/max arithmetic (no data-dependent branches inside
/// a super-block, so the loop auto-vectorizes at kEpsilonBlock lanes)
/// and a single compare rejects the pair at the first violating
/// super-block. The remaining whole kEpsilonBlock blocks are accumulated
/// the same way under one test, and the scalar tail handles
/// `d mod kEpsilonBlock`.
///
/// Defined out of line so the translation unit can be function-
/// multiversioned: on x86-64 ELF toolchains the kernel is cloned for
/// SSE4.2/AVX2/AVX-512 and dispatched by cpuid at load time, giving the
/// wide-vector code path without changing the build's baseline -march.
bool EpsilonMatches(std::span<const Count> b, std::span<const Count> a,
                    Epsilon eps);

/// Chebyshev (L-infinity) distance between two counter vectors; the CSJ
/// condition is exactly `ChebyshevDistance(b, a) <= eps`. Deliberately
/// kept as the straightforward scalar loop: it is the independent oracle
/// the tests validate the blocked EpsilonMatches against.
inline Count ChebyshevDistance(std::span<const Count> b,
                               std::span<const Count> a) {
  Count worst = 0;
  const size_t d = b.size();
  for (size_t i = 0; i < d; ++i) {
    const Count lo = b[i] < a[i] ? b[i] : a[i];
    const Count hi = b[i] < a[i] ? a[i] : b[i];
    const Count diff = hi - lo;
    if (diff > worst) worst = diff;
  }
  return worst;
}

}  // namespace csj

#endif  // CSJ_CORE_EPSILON_PREDICATE_H_
