#ifndef CSJ_CORE_BASELINE_H_
#define CSJ_CORE_BASELINE_H_

#include "core/community.h"
#include "core/join_options.h"
#include "core/join_result.h"

namespace csj {

/// Ap-Baseline (paper §5.1): nested-loop join, outer over B, inner over A,
/// committing the first eps-match of each b (the approximate rule). As in
/// Ap-MinMax, a `skip`/`offset` pair lets the inner loop start past the
/// contiguous prefix of A users that are already matched — the only
/// prefix-skippable entries in an unsorted nested loop.
JoinResult ApBaselineJoin(const Community& b, const Community& a,
                          const JoinOptions& options);

/// Ex-Baseline (paper §5.1): nested loop that first finds ALL eps-matching
/// pairs between B and A, then runs the configured one-to-one matcher
/// (paper: CSF) exactly once on the full candidate graph.
JoinResult ExBaselineJoin(const Community& b, const Community& a,
                          const JoinOptions& options);

}  // namespace csj

#endif  // CSJ_CORE_BASELINE_H_
