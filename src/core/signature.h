#ifndef CSJ_CORE_SIGNATURE_H_
#define CSJ_CORE_SIGNATURE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/column_storage.h"
#include "core/community.h"
#include "core/types.h"

namespace csj {

/// The prescreen signature layer: compact per-community sketches that let
/// a top-k query discard most of the catalog WITHOUT computing the exact
/// interval-matching bound, while keeping the exact path authoritative.
///
/// Why not minhash over the encoded totals: every eps-match satisfies
/// encoded_id(b) ∈ [encoded_min(a), encoded_max(a)], but the encoded ids
/// are user activity TOTALS, and real communities share one activity
/// distribution regardless of topic — measured on the serving workload,
/// the totals-based SimilarityUpperBound lands in [0.89, 1.0] for EVERY
/// catalog entry while true similarities are almost all 0. Any sketch of
/// the totals windows (banded minhash included) inherits that blindness.
/// The discriminative signal is per-dimension: at parts = d the MinMax
/// encoding's windows degenerate to [v_k - eps, v_k + eps] per category,
/// and THOSE separate communities sharply (a cooking brand's subscribers
/// hold large cooking counters; a sports brand's almost none).
///
/// The sketch (an LSF-style filter bank in the locality-sensitive
/// FILTERING sense of LSF-Join — deterministic filters, not probabilistic
/// hashes): per dimension k, the community's counter column is summarized
/// by `quantiles + 1` equi-rank breakpoints (sorted column values at
/// ranks j*(n-1)/Q). From two sketches alone one can certify an upper
/// bound on the number of users either side can contribute to ANY
/// eps-matching, per dimension:
///
///   every matched pair <b, a> has |v_b[k] - v_a[k]| <= eps in EVERY
///   dimension k, and matched pairs are disjoint on both sides, so
///     matched <= #{users of B with v[k] inside A's eps-extended value
///                  span}          (and symmetrically for A)
///   for every k. The breakpoint table upper-bounds those counts by rank
///   arithmetic (SignatureCountUpperBound), hence
///     similarity = matched / |B| <= SignatureSimilarityCap.
///
/// A candidate filter that admits exactly the entries whose cap reaches a
/// threshold therefore has NO false dismissals among entries with true
/// similarity >= threshold — the containment guarantee the serving
/// fallback contract builds on (docs/API.md "Candidate generation").
struct SignatureOptions {
  /// Breakpoints per dimension (table stores quantiles + 1 values).
  /// More quantiles -> tighter caps, bigger sketch. Clamped to [2, 256].
  uint32_t quantiles = 16;

  /// Recall control in the spirit of CPSJoin: at 1.0 (default) every
  /// user enters the sketch and the containment guarantee above is exact.
  /// Below 1.0 each community's users are subsampled (deterministically,
  /// from `seed`) before the quantile tables are built — sketches build
  /// faster and caps become estimates, so entries near the threshold may
  /// be dismissed; expected recall degrades gracefully with the sampling
  /// rate. Serving keeps 1.0; the knob exists for offline sweeps.
  /// Clamped to (0, 1].
  double recall_target = 1.0;

  /// Seed for the recall_target subsampling. Signatures are functions of
  /// (community bytes, options) only — same seed, same sketch, on any
  /// thread count.
  uint64_t seed = 0x5349474E41545552ULL;  // "SIGNATUR"
};

/// Reusable scratch for the bulk-ingestion sketch builder (one per
/// thread; the capacity settles at the largest community sketched).
struct SketchScratch {
  std::vector<Count> columns;  ///< composite radix keys / transposed counters
  std::vector<Count> aux;      ///< radix scatter buffer
  std::vector<uint16_t> keys16;  ///< half-width keys (vbits + dbits <= 16)
  std::vector<uint16_t> aux16;   ///< half-width radix scatter buffer
  std::vector<uint32_t> zeros;   ///< per-dim zero-counter tallies
  std::vector<UserId> users;     ///< sampled user ids (recall_target < 1)
};

/// One community's sketch: d equi-rank breakpoint rows, dimension-major.
class CommunitySignature {
 public:
  CommunitySignature(const Community& community,
                     const SignatureOptions& options);

  /// The bulk-ingestion fast path: the SAME table bytes as the plain
  /// constructor (bulk_load_test proves it), built through caller-owned
  /// scratch instead of per-call allocations. All d columns are sorted
  /// at once by an LSD radix sort over composite (dim, counter) keys —
  /// equal counter multisets sort to equal columns whatever the
  /// algorithm, so the breakpoint rows come out byte-identical to the
  /// plain constructor's per-column std::sort. `max_counter_hint`, when
  /// nonzero, must be >= every sketched counter (BulkLoad passes the
  /// digest's exact maximum; the constructor re-checks the bound from an
  /// OR-accumulator and aborts on a lying hint) and skips the max-scan
  /// pass; 0 scans. Communities whose (dim, counter) keys overflow 32
  /// bits fall back to per-column sorts. The plain constructor stays as
  /// the readable reference implementation.
  CommunitySignature(const Community& community,
                     const SignatureOptions& options, SketchScratch* scratch,
                     Count max_counter_hint = 0);

  /// A deserialized sketch: the persist path's restore constructor. The
  /// breakpoint table is BORROWED from `table` (d * (quantiles + 1)
  /// dimension-major values, e.g. a mapped segment's sketch section,
  /// pinned by `owner`) — zero-copy, byte-identical to the build
  /// constructors by the store's fsck contract (recompute agreement).
  /// `quantiles` must already be the clamped value the builders stored.
  struct TableView {
    uint32_t n = 0;
    uint32_t sampled = 0;
    uint32_t quantiles = 0;
    Dim d = 0;
    const Count* table = nullptr;
  };
  CommunitySignature(const TableView& view,
                     std::shared_ptr<const void> owner);

  /// True community size (admissibility checks, the cap's denominator).
  uint32_t size() const { return n_; }
  /// Users actually sketched (== size() at recall_target 1.0).
  uint32_t sampled() const { return sampled_; }
  Dim d() const { return d_; }
  uint32_t quantiles() const { return quantiles_; }

  /// Breakpoint row of dimension `k`: quantiles() + 1 ascending values.
  std::span<const Count> DimTable(Dim k) const {
    const size_t row = static_cast<size_t>(k) * (quantiles_ + 1);
    return {table_.data() + row, quantiles_ + 1};
  }

  /// The whole dimension-major table (the index copies it into its
  /// packed sweep columns).
  std::span<const Count> table() const { return table_.span(); }

  size_t MemoryBytes() const {
    return table_.OwnedBytes() + sizeof(*this);
  }

 private:
  uint32_t n_ = 0;
  uint32_t sampled_ = 0;
  uint32_t quantiles_ = 0;
  Dim d_ = 0;
  /// d * (quantiles + 1), dimension-major; owned when built, borrowed
  /// (mapped segment bytes pinned by owner_) when restored.
  ColumnStorage<Count> table_;
  std::shared_ptr<const void> owner_;
};

/// Certified upper bound on the number of sketched users whose value in
/// the row's dimension lies in [lo, hi]. `row` is one DimTable row
/// (quantiles + 1 breakpoints over `sampled` sorted values). The bound is
/// exact rank arithmetic: if breakpoint j (at rank r_j = j*(sampled-1)/Q)
/// exceeds hi, at most r_j values are <= hi; if it is below lo, at least
/// r_j + 1 values are < lo.
uint32_t SignatureCountUpperBound(std::span<const Count> row,
                                  uint32_t sampled, int64_t lo, int64_t hi);

/// Upper bound on similarity(B, A) for the couple behind the two
/// sketches (B = the smaller community, query wins ties — the same
/// auto-orientation the top-k service uses). Probes dimensions in
/// `probe_order` (a permutation of [0, d)) and may stop early once the
/// running cap drops below `early_exit_below` (the returned value is
/// then still an upper bound of the final cap's pass/fail verdict at
/// that threshold, just not the exact minimum). Pass a negative
/// `early_exit_below` for the exact cap.
double SignatureSimilarityCap(const CommunitySignature& query,
                              const CommunitySignature& entry, Epsilon eps,
                              std::span<const Dim> probe_order,
                              double early_exit_below = -1.0);

/// The query's probe order: dimensions sorted by descending smallest
/// breakpoint (ties: ascending dimension). Dimensions where the query's
/// every user holds a large counter — its home categories — reject
/// unrelated communities in one probe, so they go first and the sweep's
/// early exit fires after 1-3 dimensions for most entries.
std::vector<Dim> SignatureProbeOrder(const CommunitySignature& query);

/// A community's home dimension: the one with the largest smallest
/// breakpoint (ties: smaller dimension) — the first entry of
/// SignatureProbeOrder, without building the whole permutation. On the
/// profile workload this is the community's dominant category (every
/// member holds a large counter there), so grouping index packs by home
/// dimension makes packs internally alike and mutually disparate —
/// exactly what the pack-level prefilter needs to skip whole packs.
Dim SignatureHomeDim(const CommunitySignature& signature);

/// Sweep accounting, accumulated across shards by one probe.
struct PrescreenStats {
  uint64_t examined = 0;  ///< index slots looked at
  uint64_t passed = 0;    ///< cap >= threshold
  /// Certified below threshold. Slots inside packs dismissed wholesale
  /// by the pack prefilter are folded in here: the pack-level proof is
  /// cap-based, so it cannot tell which of those slots the per-slot
  /// path would have billed to skipped_inadmissible instead.
  uint64_t skipped_cap = 0;
  uint64_t skipped_inadmissible = 0;  ///< CSJ size rule fails
  uint64_t skipped_dim = 0;           ///< dimensionality mismatch
  /// Whole packs dismissed by the coarse per-pack summary check (the
  /// second filter level) without touching any slot.
  uint64_t packs_skipped = 0;
};

struct PrescreenCandidate {
  uint64_t id = 0;
  uint64_t version = 0;
};

/// Sharded packed sketch store — the structure a prescreen query sweeps
/// instead of computing exact bounds against the whole catalog.
///
/// Sharding mirrors the community catalog's: the OWNER maps an id to a
/// shard (the catalog uses its own id hash) and passes the shard index
/// to every call. The index keeps per-shard, per-dimensionality packs of
/// slot-major rows (ids, versions, sizes, breakpoint tables) so a probe
/// is one cache-friendly linear sweep per pack with no pointer chasing.
///
/// Concurrency: externally synchronized PER SHARD. The index takes no
/// locks of its own; the community catalog wraps every Install/Remove in
/// the same exclusive shard lock that guards the entry map and every
/// ProbeShard in the same shared lock — so the sketch store and the
/// entry map can never disagree about which (id, version) is resident,
/// which is what makes a probe's candidate list consistent with the
/// snapshot a query refines against.
class SignatureIndex {
 public:
  SignatureIndex(uint32_t shards, const SignatureOptions& options);

  const SignatureOptions& options() const { return options_; }
  uint32_t shards() const { return static_cast<uint32_t>(shards_.size()); }

  /// Installs (or replaces) the sketch for `id`. `signature` must be
  /// built with options() (one resolution per index).
  void Install(uint32_t shard, uint64_t id, uint64_t version,
               std::shared_ptr<const CommunitySignature> signature);

  /// One element of an InstallBatch — what Install takes, in bulk form.
  struct SlotInstall {
    uint64_t id = 0;
    uint64_t version = 0;
    std::shared_ptr<const CommunitySignature> signature;
  };

  /// Installs a whole shard batch under the caller's ONE exclusive
  /// shard lock: pack capacity is reserved up front (one reservation
  /// per target pack instead of N incremental growths), then the batch
  /// replays the exact per-element Install semantics in order —
  /// including replacement of ids already resident and of duplicates
  /// within the batch — so the resulting pack columns and summaries
  /// are byte-identical to calling Install once per element.
  /// Signatures are consumed (moved out of the batch).
  void InstallBatch(uint32_t shard, std::span<SlotInstall> batch);

  /// Drops `id`'s sketch. Returns false when absent.
  bool Remove(uint32_t shard, uint64_t id);

  struct ProbeQuery {
    const CommunitySignature* signature = nullptr;
    Epsilon eps = 0;
    /// Admission threshold tau: entries with certified cap < tau are
    /// skipped. <= 0 admits everything (an inert probe).
    double threshold = 0.0;
    /// SignatureProbeOrder(*signature); length must equal signature->d().
    std::span<const Dim> probe_order;
  };

  /// Sweeps one shard, appending passing (id, version) pairs to `out`
  /// and accumulating into `stats`.
  void ProbeShard(uint32_t shard, const ProbeQuery& query,
                  std::vector<PrescreenCandidate>* out,
                  PrescreenStats* stats) const;

  /// The resident sketch for `id` (null when absent); `version` (if
  /// non-null) receives its installed version.
  std::shared_ptr<const CommunitySignature> Lookup(
      uint32_t shard, uint64_t id, uint64_t* version = nullptr) const;

  /// Resident sketch count over all shards.
  uint64_t size() const;

  size_t MemoryBytes() const;

 private:
  /// Packs group a shard's slots by (dimensionality, home dimension):
  /// same-home communities look alike, so one coarse per-pack summary
  /// is tight enough to dismiss the whole pack against most queries.
  using PackKey = std::pair<Dim, Dim>;  ///< (d, SignatureHomeDim)

  /// Slot-major columns of one (shard, d, home) group.
  struct Pack {
    Dim d = 0;
    uint32_t stride = 0;  ///< d * (quantiles + 1) Counts per slot
    std::vector<uint64_t> ids;
    std::vector<uint64_t> versions;
    std::vector<uint32_t> sizes;    ///< true community sizes
    std::vector<uint32_t> sampled;  ///< sketched user counts
    std::vector<Count> table;       ///< slot-major breakpoint rows
    std::vector<std::shared_ptr<const CommunitySignature>> signatures;

    /// Coarse summary for the pack prefilter, maintained WIDEN-ONLY:
    /// dim_min[k] <= every resident slot's smallest breakpoint in k and
    /// dim_max[k] >= every slot's largest; min_size <= every slot's
    /// community size. Removals leave them untouched (still enclosing,
    /// possibly slack — slack only costs skip opportunities, never
    /// soundness), and widen-only updates are insertion-order
    /// independent, so bulk and sequential installs agree bytewise.
    std::vector<Count> dim_min;
    std::vector<Count> dim_max;
    uint32_t min_size = 0;
  };
  struct Shard {
    /// id -> (pack key, slot).
    std::unordered_map<uint64_t, std::pair<PackKey, uint32_t>> locate;
    std::map<PackKey, Pack> packs;
  };

  void InstallSlot(Shard& shard, uint64_t id, uint64_t version,
                   std::shared_ptr<const CommunitySignature> signature);
  void RemoveSlot(Shard& shard, PackKey key, uint32_t slot);

  SignatureOptions options_;
  std::vector<Shard> shards_;
};

}  // namespace csj

#endif  // CSJ_CORE_SIGNATURE_H_
