#ifndef CSJ_CORE_HYBRID_METHOD_H_
#define CSJ_CORE_HYBRID_METHOD_H_

#include "core/community.h"
#include "core/join_options.h"
#include "core/join_result.h"

namespace csj {

/// MinMaxEGO — the hybrid the paper's §6.2 argues for ("a combined
/// algorithm MinMax-SuperEGO would be faster than SuperEGO itself ...
/// even in that theoretic case of non-normalized data").
///
/// Structure: SuperEGO's divide-and-conquer recursion and EGO strategy
/// run on an INTEGER epsilon grid (cell = counter / eps — no
/// normalization, no float32 precision loss), and the surviving leaf
/// pairs are joined with the MinMax ENCODED filter (encoded-id window +
/// part-range overlap, computed once per community) in front of the exact
/// integer-domain d-dimensional comparison.
///
/// Consequences, verified by tests and bench_ablation_hybrid:
///  * accuracy is identical to Baseline/MinMax on every dataset family
///    (unlike normalized SuperEGO on VK-like counters), at SuperEGO-like
///    speed — the accuracy half of §6.2's claim holds outright;
///  * the encoded leaf filter provably skips d-dimensional comparisons
///    (`options.hybrid_encoded_leaf = false` gives the plain integer-grid
///    SuperEGO for comparison), though inside already-clustered EGO
///    leaves the early-exiting comparison is cheap enough that the filter
///    is wall-time neutral at the default leaf size.
JoinResult ApMinMaxEgoJoin(const Community& b, const Community& a,
                           const JoinOptions& options);

/// Exact variant: leaves collect ALL integer-domain matches; the
/// configured matcher runs once at the end, as in Ex-SuperEGO.
JoinResult ExMinMaxEgoJoin(const Community& b, const Community& a,
                           const JoinOptions& options);

}  // namespace csj

#endif  // CSJ_CORE_HYBRID_METHOD_H_
