#include "core/similarity.h"

namespace csj {

std::optional<JoinResult> ComputeSimilarity(Method method, const Community& b,
                                            const Community& a,
                                            const JoinOptions& options) {
  if (b.empty() || a.empty()) return std::nullopt;
  if (b.d() != a.d()) return std::nullopt;
  if (!SizesAdmissible(b.size(), a.size())) return std::nullopt;
  return RunMethod(method, b, a, options);
}

std::optional<JoinResult> ComputeSimilarityAutoOrder(
    Method method, const Community& x, const Community& y,
    const JoinOptions& options) {
  const bool x_is_b = x.size() <= y.size();
  const Community& b = x_is_b ? x : y;
  const Community& a = x_is_b ? y : x;
  return ComputeSimilarity(method, b, a, options);
}

}  // namespace csj
