#include "core/superego_method.h"

#include <algorithm>
#include <bit>
#include <memory>
#include <optional>
#include <vector>

#include "core/encoding_cache.h"
#include "core/join_scratch.h"
#include "core/leaf_tasks.h"
#include "ego/dimension_reorder.h"
#include "ego/ego_join.h"
#include "ego/normalized.h"
#include "matching/matcher.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace csj {

namespace {

/// Everything both SuperEGO variants share — normalization, optional
/// dimension reorder, EGO sort, segment tree and the float verify window —
/// per side, fetched from the cache (built once per community and
/// parameter set) or built locally into the optionals.
struct Prepared {
  std::shared_ptr<const SuperEgoPrep> cached_b;
  std::shared_ptr<const SuperEgoPrep> cached_a;
  std::optional<SuperEgoPrep> local_b;
  std::optional<SuperEgoPrep> local_a;
  const SuperEgoPrep* b = nullptr;
  const SuperEgoPrep* a = nullptr;
};

Prepared PrepareSuperEgo(const Community& b, const Community& a,
                         const JoinOptions& options, JoinStats* stats) {
  CSJ_CHECK_EQ(b.d(), a.d());
  CSJ_CHECK_GT(options.eps, 0u);
  const uint32_t threshold = std::max<uint32_t>(options.superego_threshold, 2);
  Prepared prep;
  if (options.cache != nullptr) {
    const CommunityDigest digest_b = DigestCommunity(b);
    const CommunityDigest digest_a = DigestCommunity(a);
    // The digests carry the max counters, so the couple-level
    // normalization denominator needs no extra pass here.
    Count max_count = options.superego_norm_max;
    if (max_count == 0) {
      max_count = std::max(digest_b.max_counter, digest_a.max_counter);
      if (max_count == 0) max_count = 1;  // all-zero data still normalizes
    }
    std::shared_ptr<const std::vector<Dim>> order_ptr;
    std::vector<Dim> identity;
    const std::vector<Dim>* order;
    if (options.superego_reorder_dims) {
      order_ptr = options.cache->GetDimensionOrder(
          b, a, digest_b, digest_a, options.eps, max_count, stats);
      order = order_ptr.get();
    } else {
      identity = ego::IdentityOrder(b.d());
      order = &identity;
    }
    const uint64_t order_hash = HashDimOrder(*order);
    prep.cached_b = options.cache->GetSuperEgoPrep(
        b, digest_b, options.eps, max_count, *order, order_hash, threshold,
        stats);
    prep.cached_a = options.cache->GetSuperEgoPrep(
        a, digest_a, options.eps, max_count, *order, order_hash, threshold,
        stats);
    prep.b = prep.cached_b.get();
    prep.a = prep.cached_a.get();
    return prep;
  }
  Count max_count = options.superego_norm_max;
  if (max_count == 0) {
    max_count = std::max(b.MaxCounter(), a.MaxCounter());
    if (max_count == 0) max_count = 1;  // all-zero data still normalizes
  }
  const std::vector<Dim> order =
      options.superego_reorder_dims
          ? ego::ComputeDimensionOrder(b, a, options.eps, max_count)
          : ego::IdentityOrder(b.d());
  prep.local_b.emplace(
      BuildSuperEgoPrep(b, max_count, options.eps, order, threshold));
  prep.local_a.emplace(
      BuildSuperEgoPrep(a, max_count, options.eps, order, threshold));
  prep.b = &*prep.local_b;
  prep.a = &*prep.local_a;
  return prep;
}

void FoldEgoStats(const ego::EgoStats& ego_stats, JoinStats* stats) {
  // The EGO strategy plays the pruning role MIN/MAX PRUNE play in MinMax;
  // surface its activity through the same counters so the benches can
  // print one uniform stats row per method.
  stats->min_prunes = ego_stats.strategy_prunes;
  stats->csf_flushes += ego_stats.leaf_joins;
}

}  // namespace

JoinResult ApSuperEgoJoin(const Community& b, const Community& a,
                          const JoinOptions& options) {
  util::Timer timer;
  JoinResult result;
  result.method = "Ap-SuperEGO";
  result.size_b = b.size();

  const Prepared prep = PrepareSuperEgo(b, a, options, &result.stats);
  const ego::NormalizedData& data_b = prep.b->data;
  const ego::NormalizedData& data_a = prep.a->data;
  // Match flags live in per-thread scratch: repeated screening joins
  // reuse their capacity instead of re-allocating.
  internal::JoinScratch& scratch = internal::GetJoinScratch();
  std::vector<uint8_t>& matched_b = scratch.matched_b;
  std::vector<uint8_t>& used_a = scratch.used_a;
  matched_b.assign(data_b.size(), 0);
  used_a.assign(data_a.size(), 0);

  ego::EgoStats ego_stats;
  const float eps_norm = data_b.eps_norm;
  LazyBatchVerifier<float, float> verifier;
  ego::EgoJoin(
      prep.b->tree, prep.a->tree,
      [&](uint32_t b_lo, uint32_t b_hi, uint32_t a_lo, uint32_t a_hi) {
        const bool batched =
            options.batch_verify && a_hi - a_lo >= kEpsilonBlock;
        for (uint32_t rb = b_lo; rb < b_hi; ++rb) {
          if (matched_b[rb]) continue;
          const std::span<const float> vb = data_b.Row(rb);
          if (batched) verifier.Start(prep.a->window, vb, eps_norm, a_hi);
          for (uint32_t ra = a_lo; ra < a_hi; ++ra) {
            if (used_a[ra]) continue;
            const bool match =
                batched ? verifier.Matches(ra)
                        : ego::EpsMatchesFloat(vb, data_a.Row(ra), eps_norm);
            result.stats.Count(match ? Event::kMatch : Event::kNoMatch);
            if (match) {
              matched_b[rb] = 1;
              used_a[ra] = 1;
              result.pairs.push_back(
                  MatchedPair{data_b.ids[rb], data_a.ids[ra]});
              break;  // Ap-Baseline leaf rule: first match ends this b
            }
          }
        }
      },
      &ego_stats);

  FoldEgoStats(ego_stats, &result.stats);
  result.stats.csf_flushes = 0;  // approximate: no matcher runs
  result.stats.seconds = timer.Seconds();
  return result;
}

JoinResult ExSuperEgoJoin(const Community& b, const Community& a,
                          const JoinOptions& options) {
  util::Timer timer;
  JoinResult result;
  result.method = "Ex-SuperEGO";
  result.size_b = b.size();

  const Prepared prep = PrepareSuperEgo(b, a, options, &result.stats);
  const ego::NormalizedData& data_b = prep.b->data;
  const ego::NormalizedData& data_a = prep.a->data;
  ego::EgoStats ego_stats;
  const float eps_norm = data_b.eps_norm;

  // The recursion only prunes; the surviving leaves are scanned in
  // parallel chunks whose outputs merge in task order (serial-identical
  // results for any thread count).
  const std::vector<internal::LeafTask> tasks =
      internal::CollectLeafTasks(prep.b->tree, prep.a->tree, &ego_stats);
  const uint32_t threads = std::max<uint32_t>(options.join_threads, 1);
  const auto num_tasks = static_cast<uint32_t>(tasks.size());
  const uint32_t chunks = util::ParallelChunks(0, num_tasks, threads);
  const std::span<internal::ChunkSlot> slots =
      internal::GetJoinScratch().chunk_arenas.Acquire(chunks);
  util::ParallelFor(
      0, num_tasks, threads,
      [&](uint32_t task_begin, uint32_t task_end, uint32_t chunk) {
        std::vector<MatchedPair>& local = slots[chunk].edges;
        JoinStats& stats = slots[chunk].stats;
        // Worker-thread scratch: leaves are at most `threshold` rows, so a
        // handful of mask words cover any run.
        std::vector<uint64_t>& mask = internal::GetJoinScratch().mask;
        for (uint32_t t = task_begin; t < task_end; ++t) {
          const internal::LeafTask& task = tasks[t];
          const uint32_t run = task.a_hi - task.a_lo;
          if (options.batch_verify && run >= kEpsilonBlock) {
            // Exact leaves want every verdict of the run, so each b row is
            // one kernel call; the survivor bitmask is walked in ascending
            // ra order (identical pair order) and the event tallies
            // collapse to popcounts.
            const uint32_t words = (run + 63) / 64;
            mask.resize(words);
            for (uint32_t rb = task.b_lo; rb < task.b_hi; ++rb) {
              EpsilonMatchesManyFloat(data_b.Row(rb), prep.a->window,
                                      task.a_lo, task.a_hi, eps_norm,
                                      mask.data());
              uint64_t found = 0;
              for (uint32_t w = 0; w < words; ++w) {
                uint64_t word = mask[w];
                found += static_cast<uint64_t>(std::popcount(word));
                while (word != 0) {
                  const uint32_t ra =
                      task.a_lo + w * 64 +
                      static_cast<uint32_t>(std::countr_zero(word));
                  local.push_back(
                      MatchedPair{data_b.ids[rb], data_a.ids[ra]});
                  word &= word - 1;
                }
              }
              stats.matches += found;
              stats.no_matches += run - found;
              stats.dimension_compares += run;
            }
            continue;
          }
          for (uint32_t rb = task.b_lo; rb < task.b_hi; ++rb) {
            const std::span<const float> vb = data_b.Row(rb);
            for (uint32_t ra = task.a_lo; ra < task.a_hi; ++ra) {
              const bool match =
                  ego::EpsMatchesFloat(vb, data_a.Row(ra), eps_norm);
              stats.Count(match ? Event::kMatch : Event::kNoMatch);
              if (match) {
                local.push_back(MatchedPair{data_b.ids[rb], data_a.ids[ra]});
              }
            }
          }
        }
      },
      options.pool);

  // Chunk-order merge into per-thread scratch (serial-identical, and the
  // buffer's capacity survives across joins).
  std::vector<MatchedPair>& candidates = internal::GetJoinScratch().candidates;
  candidates.clear();
  for (uint32_t chunk = 0; chunk < chunks; ++chunk) {
    result.stats.Merge(slots[chunk].stats);
    candidates.insert(candidates.end(), slots[chunk].edges.begin(),
                      slots[chunk].edges.end());
  }

  FoldEgoStats(ego_stats, &result.stats);
  result.stats.candidate_pairs = candidates.size();
  result.stats.csf_flushes = 1;  // one matcher call after the recursion
  util::Timer match_timer;
  result.pairs = matching::RunMatcher(options.matcher, candidates);
  result.stats.matching_seconds = match_timer.Seconds();
  result.stats.seconds = timer.Seconds();
  return result;
}

}  // namespace csj
