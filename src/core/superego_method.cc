#include "core/superego_method.h"

#include <algorithm>
#include <vector>

#include "core/join_scratch.h"
#include "core/leaf_tasks.h"
#include "ego/dimension_reorder.h"
#include "ego/ego_join.h"
#include "ego/normalized.h"
#include "matching/matcher.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace csj {

namespace {

/// Everything both SuperEGO variants share: normalization, optional
/// dimension reorder, EGO sort and segment-tree construction.
struct Prepared {
  ego::NormalizedData b;
  ego::NormalizedData a;
  ego::SegmentTree tree_b;
  ego::SegmentTree tree_a;
};

Prepared PrepareSuperEgo(const Community& b, const Community& a,
                         const JoinOptions& options) {
  CSJ_CHECK_EQ(b.d(), a.d());
  CSJ_CHECK_GT(options.eps, 0u);
  Count max_count = options.superego_norm_max;
  if (max_count == 0) {
    max_count = std::max(b.MaxCounter(), a.MaxCounter());
    if (max_count == 0) max_count = 1;  // all-zero data still normalizes
  }
  const std::vector<Dim> order =
      options.superego_reorder_dims
          ? ego::ComputeDimensionOrder(b, a, options.eps, max_count)
          : ego::IdentityOrder(b.d());
  ego::NormalizedData norm_b = ego::Normalize(b, max_count, options.eps, order);
  ego::NormalizedData norm_a = ego::Normalize(a, max_count, options.eps, order);
  const uint32_t threshold = std::max<uint32_t>(options.superego_threshold, 2);
  ego::SegmentTree tree_b(ego::CellsOf(norm_b), threshold);
  ego::SegmentTree tree_a(ego::CellsOf(norm_a), threshold);
  return Prepared{std::move(norm_b), std::move(norm_a), std::move(tree_b),
                  std::move(tree_a)};
}

void FoldEgoStats(const ego::EgoStats& ego_stats, JoinStats* stats) {
  // The EGO strategy plays the pruning role MIN/MAX PRUNE play in MinMax;
  // surface its activity through the same counters so the benches can
  // print one uniform stats row per method.
  stats->min_prunes = ego_stats.strategy_prunes;
  stats->csf_flushes += ego_stats.leaf_joins;
}

}  // namespace

JoinResult ApSuperEgoJoin(const Community& b, const Community& a,
                          const JoinOptions& options) {
  util::Timer timer;
  JoinResult result;
  result.method = "Ap-SuperEGO";
  result.size_b = b.size();

  const Prepared prep = PrepareSuperEgo(b, a, options);
  // Match flags live in per-thread scratch: repeated screening joins
  // reuse their capacity instead of re-allocating.
  internal::JoinScratch& scratch = internal::GetJoinScratch();
  std::vector<uint8_t>& matched_b = scratch.matched_b;
  std::vector<uint8_t>& used_a = scratch.used_a;
  matched_b.assign(prep.b.size(), 0);
  used_a.assign(prep.a.size(), 0);

  ego::EgoStats ego_stats;
  const float eps_norm = prep.b.eps_norm;
  ego::EgoJoin(
      prep.tree_b, prep.tree_a,
      [&](uint32_t b_lo, uint32_t b_hi, uint32_t a_lo, uint32_t a_hi) {
        for (uint32_t rb = b_lo; rb < b_hi; ++rb) {
          if (matched_b[rb]) continue;
          const std::span<const float> vb = prep.b.Row(rb);
          for (uint32_t ra = a_lo; ra < a_hi; ++ra) {
            if (used_a[ra]) continue;
            const bool match =
                ego::EpsMatchesFloat(vb, prep.a.Row(ra), eps_norm);
            result.stats.Count(match ? Event::kMatch : Event::kNoMatch);
            if (match) {
              matched_b[rb] = 1;
              used_a[ra] = 1;
              result.pairs.push_back(
                  MatchedPair{prep.b.ids[rb], prep.a.ids[ra]});
              break;  // Ap-Baseline leaf rule: first match ends this b
            }
          }
        }
      },
      &ego_stats);

  FoldEgoStats(ego_stats, &result.stats);
  result.stats.csf_flushes = 0;  // approximate: no matcher runs
  result.stats.seconds = timer.Seconds();
  return result;
}

JoinResult ExSuperEgoJoin(const Community& b, const Community& a,
                          const JoinOptions& options) {
  util::Timer timer;
  JoinResult result;
  result.method = "Ex-SuperEGO";
  result.size_b = b.size();

  const Prepared prep = PrepareSuperEgo(b, a, options);
  ego::EgoStats ego_stats;
  const float eps_norm = prep.b.eps_norm;

  // The recursion only prunes; the surviving leaves are scanned in
  // parallel chunks whose outputs merge in task order (serial-identical
  // results for any thread count).
  const std::vector<internal::LeafTask> tasks =
      internal::CollectLeafTasks(prep.tree_b, prep.tree_a, &ego_stats);
  const uint32_t threads = std::max<uint32_t>(options.threads, 1);
  const auto num_tasks = static_cast<uint32_t>(tasks.size());
  const uint32_t chunks = util::ParallelChunks(0, num_tasks, threads);
  std::vector<std::vector<MatchedPair>> chunk_candidates(chunks);
  std::vector<JoinStats> chunk_stats(chunks);
  util::ParallelFor(
      0, num_tasks, threads,
      [&](uint32_t task_begin, uint32_t task_end, uint32_t chunk) {
        std::vector<MatchedPair>& local = chunk_candidates[chunk];
        JoinStats& stats = chunk_stats[chunk];
        for (uint32_t t = task_begin; t < task_end; ++t) {
          const internal::LeafTask& task = tasks[t];
          for (uint32_t rb = task.b_lo; rb < task.b_hi; ++rb) {
            const std::span<const float> vb = prep.b.Row(rb);
            for (uint32_t ra = task.a_lo; ra < task.a_hi; ++ra) {
              const bool match =
                  ego::EpsMatchesFloat(vb, prep.a.Row(ra), eps_norm);
              stats.Count(match ? Event::kMatch : Event::kNoMatch);
              if (match) {
                local.push_back(MatchedPair{prep.b.ids[rb], prep.a.ids[ra]});
              }
            }
          }
        }
      });

  // Chunk-order merge into per-thread scratch (serial-identical, and the
  // buffer's capacity survives across joins).
  std::vector<MatchedPair>& candidates = internal::GetJoinScratch().candidates;
  candidates.clear();
  for (uint32_t chunk = 0; chunk < chunks; ++chunk) {
    result.stats.Merge(chunk_stats[chunk]);
    candidates.insert(candidates.end(), chunk_candidates[chunk].begin(),
                      chunk_candidates[chunk].end());
  }

  FoldEgoStats(ego_stats, &result.stats);
  result.stats.candidate_pairs = candidates.size();
  result.stats.csf_flushes = 1;  // one matcher call after the recursion
  result.pairs = matching::RunMatcher(options.matcher, candidates);
  result.stats.seconds = timer.Seconds();
  return result;
}

}  // namespace csj
