#include "core/similarity_bound.h"

#include <algorithm>
#include <set>
#include <vector>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace csj {

namespace {

struct Window {
  uint64_t min;
  uint64_t max;
};

}  // namespace

uint32_t MatchingUpperBound(const Community& b, const Community& a,
                            Epsilon eps) {
  CSJ_CHECK_EQ(b.d(), a.d());
  if (b.empty() || a.empty()) return 0;
  const Dim d = b.d();

  // B side: encoded ids (total counter sums).
  std::multiset<uint64_t> ids;
  for (UserId u = 0; u < b.size(); ++u) {
    uint64_t id = 0;
    for (const Count c : b.User(u)) id += c;
    ids.insert(id);
  }

  // A side: encoded windows [sum max(0, v-eps), sum (v+eps)].
  std::vector<Window> windows;
  windows.reserve(a.size());
  for (UserId u = 0; u < a.size(); ++u) {
    const std::span<const Count> vec = a.User(u);
    uint64_t lo = 0;
    uint64_t hi = 0;
    for (Dim k = 0; k < d; ++k) {
      lo += vec[k] >= eps ? vec[k] - eps : 0;
      hi += static_cast<uint64_t>(vec[k]) + eps;
    }
    windows.push_back(Window{lo, hi});
  }

  // Optimal interval-point matching: by ascending window max, take the
  // smallest unused id that fits. Exchange argument: the earliest-ending
  // window is the most constrained, and giving it the smallest feasible
  // point never blocks a solution that another assignment would allow.
  std::sort(windows.begin(), windows.end(),
            [](const Window& x, const Window& y) {
              if (x.max != y.max) return x.max < y.max;
              return x.min < y.min;
            });
  uint32_t matched = 0;
  for (const Window& w : windows) {
    const auto it = ids.lower_bound(w.min);
    if (it == ids.end() || *it > w.max) continue;
    ids.erase(it);
    ++matched;
    if (ids.empty()) break;
  }
  return matched;
}

double SimilarityUpperBound(const Community& b, const Community& a,
                            Epsilon eps) {
  if (b.empty()) return 0.0;
  return static_cast<double>(MatchingUpperBound(b, a, eps)) /
         static_cast<double>(b.size());
}

std::vector<double> SimilarityUpperBounds(
    const std::vector<std::pair<const Community*, const Community*>>& couples,
    Epsilon eps, util::ThreadPool* pool, uint32_t threads) {
  std::vector<double> bounds(couples.size(), 0.0);
  const auto bound_one = [&](uint32_t i) {
    CSJ_CHECK(couples[i].first != nullptr && couples[i].second != nullptr);
    bounds[i] = SimilarityUpperBound(*couples[i].first, *couples[i].second,
                                     eps);
  };
  const auto tasks = static_cast<uint32_t>(couples.size());
  if (threads <= 1 || tasks <= 1) {
    for (uint32_t i = 0; i < tasks; ++i) bound_one(i);
    return bounds;
  }
  util::ThreadPool& run_pool =
      pool != nullptr ? *pool : util::ThreadPool::Global();
  run_pool.Run(tasks, bound_one, threads);
  return bounds;
}

}  // namespace csj
