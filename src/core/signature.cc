#include "core/signature.h"

#include <algorithm>
#include <cstring>
#include <numeric>

#include "core/similarity.h"
#include "util/logging.h"
#include "util/rng.h"

namespace csj {
namespace {

constexpr uint32_t kMinQuantiles = 2;
constexpr uint32_t kMaxQuantiles = 256;

uint32_t ClampQuantiles(uint32_t q) {
  return std::clamp(q, kMinQuantiles, kMaxQuantiles);
}

/// Rank of breakpoint j over `sampled` sorted values: j * (sampled-1) / Q.
/// Monotone in j, 0 at j = 0, sampled - 1 at j = Q.
inline uint32_t RankOf(uint32_t j, uint32_t sampled, uint32_t quantiles) {
  return static_cast<uint32_t>(
      (static_cast<uint64_t>(j) * (sampled - 1)) / quantiles);
}

}  // namespace

CommunitySignature::CommunitySignature(const Community& community,
                                       const SignatureOptions& options) {
  CSJ_CHECK(community.size() > 0) << "cannot sketch an empty community";
  n_ = community.size();
  d_ = community.d();
  quantiles_ = ClampQuantiles(options.quantiles);

  // recall_target < 1: deterministic per-user coin from the seed and the
  // user's position. The same (community, options) always sketches the
  // same subset, independent of build thread or call order.
  std::vector<UserId> users;
  const double recall = std::clamp(options.recall_target, 0.0, 1.0);
  if (recall >= 1.0) {
    users.resize(n_);
    std::iota(users.begin(), users.end(), UserId{0});
  } else {
    users.reserve(n_);
    const uint64_t threshold = static_cast<uint64_t>(
        recall * static_cast<double>(UINT64_MAX));
    for (UserId u = 0; u < n_; ++u) {
      uint64_t state = options.seed ^ (0xD1B54A32D192ED03ULL * (u + 1));
      if (util::SplitMix64(state) <= threshold) users.push_back(u);
    }
    if (users.empty()) users.push_back(0);  // a sketch needs >= 1 user
  }
  sampled_ = static_cast<uint32_t>(users.size());

  table_.resize(static_cast<size_t>(d_) * (quantiles_ + 1));
  std::vector<Count> column(sampled_);
  for (Dim k = 0; k < d_; ++k) {
    for (uint32_t i = 0; i < sampled_; ++i) {
      column[i] = community.User(users[i])[k];
    }
    std::sort(column.begin(), column.end());
    Count* row = table_.data() + static_cast<size_t>(k) * (quantiles_ + 1);
    for (uint32_t j = 0; j <= quantiles_; ++j) {
      row[j] = column[RankOf(j, sampled_, quantiles_)];
    }
  }
}

uint32_t SignatureCountUpperBound(std::span<const Count> row, uint32_t sampled,
                                  int64_t lo, int64_t hi) {
  const uint32_t quantiles = static_cast<uint32_t>(row.size()) - 1;
  if (hi < static_cast<int64_t>(row[0]) ||
      lo > static_cast<int64_t>(row[quantiles])) {
    return 0;
  }
  // Upper bound on count(value <= hi): the smallest breakpoint above hi
  // sits at rank r_j, so at most r_j values can be <= hi.
  uint32_t ub_leq = sampled;
  for (uint32_t j = 0; j <= quantiles; ++j) {
    if (static_cast<int64_t>(row[j]) > hi) {
      ub_leq = RankOf(j, sampled, quantiles);
      break;
    }
  }
  // Lower bound on count(value < lo): the largest breakpoint below lo at
  // rank r_j proves at least r_j + 1 values are < lo.
  uint32_t lb_lt = 0;
  for (uint32_t j = quantiles + 1; j-- > 0;) {
    if (static_cast<int64_t>(row[j]) < lo) {
      lb_lt = RankOf(j, sampled, quantiles) + 1;
      break;
    }
  }
  return ub_leq > lb_lt ? ub_leq - lb_lt : 0;
}

namespace {

/// Shared sweep kernel over raw rows; `*_table` point at dimension-major
/// rows of (quantiles + 1) breakpoints. Returns the certified cap, early
/// exiting (same verdict, possibly looser value) below `early_exit_below`.
double CapOverRows(const Count* query_table, uint32_t query_sampled,
                   uint32_t query_size, const Count* entry_table,
                   uint32_t entry_sampled, uint32_t entry_size,
                   uint32_t quantiles, Epsilon eps,
                   std::span<const Dim> probe_order,
                   double early_exit_below) {
  const uint32_t row_len = quantiles + 1;
  const uint32_t bn = std::min(query_size, entry_size);
  // matched <= min(|B|, |A|) trivially; each probed dimension can only
  // lower the bound.
  uint32_t ub = bn;
  const double need = early_exit_below * static_cast<double>(bn);
  for (Dim k : probe_order) {
    const Count* query_row = query_table + static_cast<size_t>(k) * row_len;
    const Count* entry_row = entry_table + static_cast<size_t>(k) * row_len;
    // Matched users of either side must land inside the other side's
    // eps-extended value span in this dimension.
    const uint32_t in_query = SignatureCountUpperBound(
        {query_row, row_len}, query_sampled,
        static_cast<int64_t>(entry_row[0]) - eps,
        static_cast<int64_t>(entry_row[quantiles]) + eps);
    const uint32_t in_entry = SignatureCountUpperBound(
        {entry_row, row_len}, entry_sampled,
        static_cast<int64_t>(query_row[0]) - eps,
        static_cast<int64_t>(query_row[quantiles]) + eps);
    ub = std::min(ub, std::min(in_query, in_entry));
    if (ub == 0 || static_cast<double>(ub) < need) break;
  }
  return static_cast<double>(ub) / static_cast<double>(bn);
}

}  // namespace

double SignatureSimilarityCap(const CommunitySignature& query,
                              const CommunitySignature& entry, Epsilon eps,
                              std::span<const Dim> probe_order,
                              double early_exit_below) {
  CSJ_CHECK(query.d() == entry.d()) << "dimensionality mismatch";
  CSJ_CHECK(query.quantiles() == entry.quantiles())
      << "signatures built with different resolutions";
  CSJ_CHECK(probe_order.size() == query.d());
  return CapOverRows(query.table().data(), query.sampled(), query.size(),
                     entry.table().data(), entry.sampled(), entry.size(),
                     query.quantiles(), eps, probe_order, early_exit_below);
}

std::vector<Dim> SignatureProbeOrder(const CommunitySignature& query) {
  std::vector<Dim> order(query.d());
  std::iota(order.begin(), order.end(), Dim{0});
  std::sort(order.begin(), order.end(), [&](Dim a, Dim b) {
    const Count min_a = query.DimTable(a)[0];
    const Count min_b = query.DimTable(b)[0];
    if (min_a != min_b) return min_a > min_b;
    return a < b;
  });
  return order;
}

SignatureIndex::SignatureIndex(uint32_t shards,
                               const SignatureOptions& options)
    : options_(options), shards_(std::max(shards, 1u)) {
  options_.quantiles = ClampQuantiles(options_.quantiles);
}

void SignatureIndex::Install(uint32_t shard_index, uint64_t id,
                             uint64_t version,
                             std::shared_ptr<const CommunitySignature> signature) {
  CSJ_CHECK(shard_index < shards_.size());
  CSJ_CHECK(signature != nullptr);
  CSJ_CHECK(signature->quantiles() == options_.quantiles)
      << "signature resolution does not match the index";
  Shard& shard = shards_[shard_index];
  auto it = shard.locate.find(id);
  if (it != shard.locate.end()) {
    // Replace: drop the old slot first — the community may have changed
    // dimensionality, which moves it to a different pack.
    RemoveSlot(shard, it->second.first, it->second.second);
  }
  const Dim d = signature->d();
  Pack& pack = shard.packs[d];
  if (pack.ids.empty()) {
    pack.d = d;
    pack.stride = static_cast<uint32_t>(d) * (options_.quantiles + 1);
  }
  const uint32_t slot = static_cast<uint32_t>(pack.ids.size());
  pack.ids.push_back(id);
  pack.versions.push_back(version);
  pack.sizes.push_back(signature->size());
  pack.sampled.push_back(signature->sampled());
  pack.table.insert(pack.table.end(), signature->table().begin(),
                    signature->table().end());
  pack.signatures.push_back(std::move(signature));
  shard.locate[id] = {d, slot};
}

bool SignatureIndex::Remove(uint32_t shard_index, uint64_t id) {
  CSJ_CHECK(shard_index < shards_.size());
  Shard& shard = shards_[shard_index];
  auto it = shard.locate.find(id);
  if (it == shard.locate.end()) return false;
  RemoveSlot(shard, it->second.first, it->second.second);
  return true;
}

void SignatureIndex::RemoveSlot(Shard& shard, Dim d, uint32_t slot) {
  auto pack_it = shard.packs.find(d);
  CSJ_CHECK(pack_it != shard.packs.end());
  Pack& pack = pack_it->second;
  const uint32_t last = static_cast<uint32_t>(pack.ids.size()) - 1;
  shard.locate.erase(pack.ids[slot]);
  if (slot != last) {
    // Swap-with-last keeps the columns dense; only the moved id's locate
    // entry needs fixing.
    pack.ids[slot] = pack.ids[last];
    pack.versions[slot] = pack.versions[last];
    pack.sizes[slot] = pack.sizes[last];
    pack.sampled[slot] = pack.sampled[last];
    std::memcpy(pack.table.data() + static_cast<size_t>(slot) * pack.stride,
                pack.table.data() + static_cast<size_t>(last) * pack.stride,
                static_cast<size_t>(pack.stride) * sizeof(Count));
    pack.signatures[slot] = std::move(pack.signatures[last]);
    shard.locate[pack.ids[slot]] = {d, slot};
  }
  pack.ids.pop_back();
  pack.versions.pop_back();
  pack.sizes.pop_back();
  pack.sampled.pop_back();
  pack.table.resize(pack.table.size() - pack.stride);
  pack.signatures.pop_back();
}

void SignatureIndex::ProbeShard(uint32_t shard_index, const ProbeQuery& query,
                                std::vector<PrescreenCandidate>* out,
                                PrescreenStats* stats) const {
  CSJ_CHECK(shard_index < shards_.size());
  CSJ_CHECK(query.signature != nullptr);
  CSJ_CHECK(query.probe_order.size() == query.signature->d());
  const Shard& shard = shards_[shard_index];
  const CommunitySignature& query_sig = *query.signature;
  const uint32_t query_size = query_sig.size();
  const uint32_t quantiles = query_sig.quantiles();
  for (const auto& [pack_d, pack] : shard.packs) {
    const uint64_t slots = pack.ids.size();
    stats->examined += slots;
    if (pack_d != query_sig.d()) {
      // A whole pack of differently-dimensioned entries rejects for free
      // (the scan path counts these as inadmissible, one by one).
      stats->skipped_dim += slots;
      continue;
    }
    for (uint32_t slot = 0; slot < slots; ++slot) {
      const uint32_t entry_size = pack.sizes[slot];
      const uint32_t smaller = std::min(query_size, entry_size);
      const uint32_t larger = std::max(query_size, entry_size);
      if (!SizesAdmissible(smaller, larger)) {
        ++stats->skipped_inadmissible;
        continue;
      }
      const double cap = CapOverRows(
          query_sig.table().data(), query_sig.sampled(), query_size,
          pack.table.data() + static_cast<size_t>(slot) * pack.stride,
          pack.sampled[slot], entry_size, quantiles, query.eps,
          query.probe_order, query.threshold);
      if (cap >= query.threshold) {
        ++stats->passed;
        out->push_back({pack.ids[slot], pack.versions[slot]});
      } else {
        ++stats->skipped_cap;
      }
    }
  }
}

std::shared_ptr<const CommunitySignature> SignatureIndex::Lookup(
    uint32_t shard_index, uint64_t id, uint64_t* version) const {
  CSJ_CHECK(shard_index < shards_.size());
  const Shard& shard = shards_[shard_index];
  auto it = shard.locate.find(id);
  if (it == shard.locate.end()) return nullptr;
  const auto& pack = shard.packs.at(it->second.first);
  if (version != nullptr) *version = pack.versions[it->second.second];
  return pack.signatures[it->second.second];
}

uint64_t SignatureIndex::size() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) total += shard.locate.size();
  return total;
}

size_t SignatureIndex::MemoryBytes() const {
  size_t total = sizeof(*this);
  for (const Shard& shard : shards_) {
    for (const auto& [d, pack] : shard.packs) {
      total += pack.ids.capacity() * sizeof(uint64_t) +
               pack.versions.capacity() * sizeof(uint64_t) +
               pack.sizes.capacity() * sizeof(uint32_t) +
               pack.sampled.capacity() * sizeof(uint32_t) +
               pack.table.capacity() * sizeof(Count);
      for (const auto& sig : pack.signatures) {
        if (sig != nullptr) total += sig->MemoryBytes();
      }
    }
    total += shard.locate.size() *
             (sizeof(uint64_t) + sizeof(std::pair<Dim, uint32_t>));
  }
  return total;
}

}  // namespace csj
