#include "core/signature.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <numeric>

#include "core/similarity.h"
#include "util/logging.h"
#include "util/rng.h"

namespace csj {
namespace {

constexpr uint32_t kMinQuantiles = 2;
constexpr uint32_t kMaxQuantiles = 256;

uint32_t ClampQuantiles(uint32_t q) {
  return std::clamp(q, kMinQuantiles, kMaxQuantiles);
}

/// Rank of breakpoint j over `sampled` sorted values: j * (sampled-1) / Q.
/// Monotone in j, 0 at j = 0, sampled - 1 at j = Q.
inline uint32_t RankOf(uint32_t j, uint32_t sampled, uint32_t quantiles) {
  return static_cast<uint32_t>(
      (static_cast<uint64_t>(j) * (sampled - 1)) / quantiles);
}

/// Radix-sort all d columns at once through composite (dim << vbits) |
/// counter keys, then read the breakpoint ranks straight out of the
/// sorted key array (column k's nonzeros occupy a contiguous run and
/// the masked low bits are the sorted counters). KeyT is the narrowest
/// unsigned type that holds vbits + dbits: uint16_t halves the radix
/// memory traffic whenever counters and dims fit (they do for d = 27
/// categories until a counter exceeds ~2k).
///
/// Zero counters never enter the key array: they are counted per dim
/// during the key build and resolved as an implicit sorted prefix at
/// rank extraction (zero is the unsigned minimum, so a sorted column is
/// always `zeros[k]` zeros followed by the sorted nonzeros). Profile
/// data is roughly half zeros, and skipping them halves the scatter
/// passes — which are the radix hot spot, serialized by
/// store-to-forward chains whenever consecutive keys land in the same
/// bucket (bucket 0 otherwise absorbs every zero).
template <typename KeyT>
void RadixRankExtract(const Community& community,
                      const std::vector<UserId>& users, bool all_users,
                      uint32_t sampled, Dim d, uint32_t vbits, uint32_t dbits,
                      uint32_t quantiles, const uint32_t* ranks,
                      std::vector<KeyT>& keys, std::vector<KeyT>& aux,
                      std::vector<uint32_t>& zeros, Count* table) {
  const size_t total = static_cast<size_t>(d) * sampled;
  keys.resize(total);
  aux.resize(total);
  zeros.assign(d, 0);
  const uint32_t passes = (vbits + dbits + 7) / 8;
  CSJ_CHECK(passes <= sizeof(KeyT));
  // Key build is a pure compaction pass: the key is written
  // unconditionally and the cursor advances by the nonzero flag, so a
  // zero counter's slot is simply overwritten by the next key. No
  // accumulator is indexed by key content here — zero runs would
  // otherwise serialize the loop through store-to-load forwarding on
  // one histogram slot. The build doubles as hint audit: the
  // OR-accumulator's width bounds every counter's width, so a hint
  // below the true maximum (which would corrupt keys) aborts instead
  // of mis-sketching.
  Count seen = 0;
  size_t p = 0;
  for (uint32_t i = 0; i < sampled; ++i) {
    const Count* row = community.User(all_users ? i : users[i]).data();
    for (Dim k = 0; k < d; ++k) {
      const Count v = row[k];
      seen |= v;
      keys[p] = static_cast<KeyT>((static_cast<Count>(k) << vbits) | v);
      p += v != 0;
    }
  }
  CSJ_CHECK(static_cast<uint32_t>(std::bit_width(seen)) <= vbits)
      << "max_counter_hint below the true maximum counter";
  const size_t kept = p;
  // Histogram pass over the surviving keys only: every digit histogram
  // for the radix passes below, plus the per-dim nonzero counts (the
  // dim tag is the key's high field), in one ~half-length sweep.
  uint32_t hist[sizeof(KeyT)][256] = {};
  for (size_t i = 0; i < kept; ++i) {
    const KeyT key = keys[i];
    ++zeros[key >> vbits];
    if (passes == 2) {
      ++hist[0][key & 0xFF];
      ++hist[1][(key >> 8) & 0xFF];
    } else {
      for (uint32_t pass = 0; pass < passes; ++pass) {
        ++hist[pass][(key >> (pass * 8)) & 0xFF];
      }
    }
  }
  // `zeros` held nonzero tallies during the sweep; flip it.
  for (Dim k = 0; k < d; ++k) zeros[k] = sampled - zeros[k];
  KeyT* src = keys.data();
  KeyT* dst = aux.data();
  for (uint32_t pass = 0; pass < passes; ++pass) {
    const uint32_t shift = pass * 8;
    uint32_t* buckets = hist[pass];
    uint32_t sum = 0;
    for (uint32_t b = 0; b < 256; ++b) {
      const uint32_t count = buckets[b];
      buckets[b] = sum;
      sum += count;
    }
    for (size_t i = 0; i < kept; ++i) {
      dst[buckets[(src[i] >> shift) & 0xFF]++] = src[i];
    }
    std::swap(src, dst);
  }
  const Count mask = vbits >= 32 ? ~Count{0} : (Count{1} << vbits) - 1;
  size_t col_start = 0;
  for (Dim k = 0; k < d; ++k) {
    const uint32_t z = zeros[k];
    const KeyT* column = src + col_start;
    Count* row = table + static_cast<size_t>(k) * (quantiles + 1);
    for (uint32_t j = 0; j <= quantiles; ++j) {
      const uint32_t r = ranks[j];
      row[j] = r < z ? Count{0} : (static_cast<Count>(column[r - z]) & mask);
    }
    col_start += sampled - z;
  }
}

}  // namespace

CommunitySignature::CommunitySignature(const Community& community,
                                       const SignatureOptions& options) {
  CSJ_CHECK(community.size() > 0) << "cannot sketch an empty community";
  n_ = community.size();
  d_ = community.d();
  quantiles_ = ClampQuantiles(options.quantiles);

  // recall_target < 1: deterministic per-user coin from the seed and the
  // user's position. The same (community, options) always sketches the
  // same subset, independent of build thread or call order.
  std::vector<UserId> users;
  const double recall = std::clamp(options.recall_target, 0.0, 1.0);
  if (recall >= 1.0) {
    users.resize(n_);
    std::iota(users.begin(), users.end(), UserId{0});
  } else {
    users.reserve(n_);
    const uint64_t threshold = static_cast<uint64_t>(
        recall * static_cast<double>(UINT64_MAX));
    for (UserId u = 0; u < n_; ++u) {
      uint64_t state = options.seed ^ (0xD1B54A32D192ED03ULL * (u + 1));
      if (util::SplitMix64(state) <= threshold) users.push_back(u);
    }
    if (users.empty()) users.push_back(0);  // a sketch needs >= 1 user
  }
  sampled_ = static_cast<uint32_t>(users.size());

  std::vector<Count> table(static_cast<size_t>(d_) * (quantiles_ + 1));
  std::vector<Count> column(sampled_);
  for (Dim k = 0; k < d_; ++k) {
    for (uint32_t i = 0; i < sampled_; ++i) {
      column[i] = community.User(users[i])[k];
    }
    std::sort(column.begin(), column.end());
    Count* row = table.data() + static_cast<size_t>(k) * (quantiles_ + 1);
    for (uint32_t j = 0; j <= quantiles_; ++j) {
      row[j] = column[RankOf(j, sampled_, quantiles_)];
    }
  }
  table_ = std::move(table);
}

CommunitySignature::CommunitySignature(const TableView& view,
                                       std::shared_ptr<const void> owner)
    : n_(view.n),
      sampled_(view.sampled),
      quantiles_(view.quantiles),
      d_(view.d),
      table_(ColumnStorage<Count>::View(
          view.table, static_cast<size_t>(view.d) * (view.quantiles + 1))),
      owner_(std::move(owner)) {
  CSJ_CHECK_GE(n_, 1u);
  CSJ_CHECK_GE(sampled_, 1u);
  CSJ_CHECK_GE(d_, 1u);
  CSJ_CHECK_EQ(ClampQuantiles(quantiles_), quantiles_);
  CSJ_CHECK(view.table != nullptr);
}

CommunitySignature::CommunitySignature(const Community& community,
                                       const SignatureOptions& options,
                                       SketchScratch* scratch,
                                       Count max_counter_hint) {
  CSJ_CHECK(community.size() > 0) << "cannot sketch an empty community";
  CSJ_CHECK(scratch != nullptr);
  n_ = community.size();
  d_ = community.d();
  quantiles_ = ClampQuantiles(options.quantiles);

  // Same deterministic subset as the reference constructor.
  std::vector<UserId>& users = scratch->users;
  users.clear();
  const double recall = std::clamp(options.recall_target, 0.0, 1.0);
  const bool all_users = recall >= 1.0;
  if (!all_users) {
    const uint64_t threshold =
        static_cast<uint64_t>(recall * static_cast<double>(UINT64_MAX));
    for (UserId u = 0; u < n_; ++u) {
      uint64_t state = options.seed ^ (0xD1B54A32D192ED03ULL * (u + 1));
      if (util::SplitMix64(state) <= threshold) users.push_back(u);
    }
    if (users.empty()) users.push_back(0);  // a sketch needs >= 1 user
  }
  sampled_ = all_users ? n_ : static_cast<uint32_t>(users.size());
  std::vector<Count> table(static_cast<size_t>(d_) * (quantiles_ + 1));

  // A sketch is d order-statistic rows, one per counter column. Instead
  // of d separate sorts, sort ALL columns at once: pack each counter
  // into a (dim << vbits) | counter key and LSD-radix the keys — the
  // sorted key array is the concatenation of the sorted columns in dim
  // order (zeros included), and equal value multisets sort identically
  // under any algorithm, so the rank reads below reproduce the reference
  // constructor's bytes exactly.
  Count max_counter = max_counter_hint;
  if (max_counter == 0) {
    for (uint32_t i = 0; i < sampled_; ++i) {
      const Count* row = community.User(all_users ? i : users[i]).data();
      for (Dim k = 0; k < d_; ++k) max_counter = std::max(max_counter, row[k]);
    }
  }
  const uint32_t vbits = std::bit_width(std::max(max_counter, Count{1}));
  const uint32_t dbits = d_ <= 1 ? 0 : std::bit_width(d_ - 1);

  // Breakpoint ranks depend on (j, sampled, quantiles) only — hoist the
  // 64-bit divisions out of the per-dimension loops (d * (Q+1) of them
  // otherwise; the divider is the rank loop's hot instruction).
  uint32_t ranks[kMaxQuantiles + 1];
  for (uint32_t j = 0; j <= quantiles_; ++j) {
    ranks[j] = RankOf(j, sampled_, quantiles_);
  }

  if (vbits + dbits <= 16) {
    RadixRankExtract<uint16_t>(community, users, all_users, sampled_, d_,
                               vbits, dbits, quantiles_, ranks,
                               scratch->keys16, scratch->aux16,
                               scratch->zeros, table.data());
    table_ = std::move(table);
    return;
  }
  if (vbits + dbits <= 32) {
    RadixRankExtract<Count>(community, users, all_users, sampled_, d_, vbits,
                            dbits, quantiles_, ranks, scratch->columns,
                            scratch->aux, scratch->zeros, table.data());
    table_ = std::move(table);
    return;
  }

  // Fallback for counters too wide to share a 32-bit key with the dim
  // tag: transpose once, then per-column sorts of the nonzero tail.
  std::vector<Count>& columns = scratch->columns;
  columns.resize(static_cast<size_t>(d_) * sampled_);
  for (uint32_t i = 0; i < sampled_; ++i) {
    const Count* row = community.User(all_users ? i : users[i]).data();
    for (Dim k = 0; k < d_; ++k) {
      columns[static_cast<size_t>(k) * sampled_ + i] = row[k];
    }
  }
  for (Dim k = 0; k < d_; ++k) {
    Count* column = columns.data() + static_cast<size_t>(k) * sampled_;
    // Counters are unsigned, so the sorted column is a zero prefix
    // followed by the sorted nonzeros: compact the nonzeros to the
    // front, sort only them, and resolve ranks against the implicit
    // zero prefix.
    uint32_t nonzeros = 0;
    for (uint32_t i = 0; i < sampled_; ++i) {
      const Count v = column[i];
      if (v != 0) column[nonzeros++] = v;
    }
    std::sort(column, column + nonzeros);
    const uint32_t zeros = sampled_ - nonzeros;
    Count* row = table.data() + static_cast<size_t>(k) * (quantiles_ + 1);
    for (uint32_t j = 0; j <= quantiles_; ++j) {
      const uint32_t r = ranks[j];
      row[j] = r < zeros ? 0 : column[r - zeros];
    }
  }
  table_ = std::move(table);
}

uint32_t SignatureCountUpperBound(std::span<const Count> row, uint32_t sampled,
                                  int64_t lo, int64_t hi) {
  const uint32_t quantiles = static_cast<uint32_t>(row.size()) - 1;
  if (hi < static_cast<int64_t>(row[0]) ||
      lo > static_cast<int64_t>(row[quantiles])) {
    return 0;
  }
  // Upper bound on count(value <= hi): the smallest breakpoint above hi
  // sits at rank r_j, so at most r_j values can be <= hi.
  uint32_t ub_leq = sampled;
  for (uint32_t j = 0; j <= quantiles; ++j) {
    if (static_cast<int64_t>(row[j]) > hi) {
      ub_leq = RankOf(j, sampled, quantiles);
      break;
    }
  }
  // Lower bound on count(value < lo): the largest breakpoint below lo at
  // rank r_j proves at least r_j + 1 values are < lo.
  uint32_t lb_lt = 0;
  for (uint32_t j = quantiles + 1; j-- > 0;) {
    if (static_cast<int64_t>(row[j]) < lo) {
      lb_lt = RankOf(j, sampled, quantiles) + 1;
      break;
    }
  }
  return ub_leq > lb_lt ? ub_leq - lb_lt : 0;
}

namespace {

/// Shared sweep kernel over raw rows; `*_table` point at dimension-major
/// rows of (quantiles + 1) breakpoints. Returns the certified cap, early
/// exiting (same verdict, possibly looser value) below `early_exit_below`.
double CapOverRows(const Count* query_table, uint32_t query_sampled,
                   uint32_t query_size, const Count* entry_table,
                   uint32_t entry_sampled, uint32_t entry_size,
                   uint32_t quantiles, Epsilon eps,
                   std::span<const Dim> probe_order,
                   double early_exit_below) {
  const uint32_t row_len = quantiles + 1;
  const uint32_t bn = std::min(query_size, entry_size);
  // matched <= min(|B|, |A|) trivially; each probed dimension can only
  // lower the bound.
  uint32_t ub = bn;
  const double need = early_exit_below * static_cast<double>(bn);
  for (Dim k : probe_order) {
    const Count* query_row = query_table + static_cast<size_t>(k) * row_len;
    const Count* entry_row = entry_table + static_cast<size_t>(k) * row_len;
    // Matched users of either side must land inside the other side's
    // eps-extended value span in this dimension.
    const uint32_t in_query = SignatureCountUpperBound(
        {query_row, row_len}, query_sampled,
        static_cast<int64_t>(entry_row[0]) - eps,
        static_cast<int64_t>(entry_row[quantiles]) + eps);
    const uint32_t in_entry = SignatureCountUpperBound(
        {entry_row, row_len}, entry_sampled,
        static_cast<int64_t>(query_row[0]) - eps,
        static_cast<int64_t>(query_row[quantiles]) + eps);
    ub = std::min(ub, std::min(in_query, in_entry));
    if (ub == 0 || static_cast<double>(ub) < need) break;
  }
  return static_cast<double>(ub) / static_cast<double>(bn);
}

}  // namespace

double SignatureSimilarityCap(const CommunitySignature& query,
                              const CommunitySignature& entry, Epsilon eps,
                              std::span<const Dim> probe_order,
                              double early_exit_below) {
  CSJ_CHECK(query.d() == entry.d()) << "dimensionality mismatch";
  CSJ_CHECK(query.quantiles() == entry.quantiles())
      << "signatures built with different resolutions";
  CSJ_CHECK(probe_order.size() == query.d());
  return CapOverRows(query.table().data(), query.sampled(), query.size(),
                     entry.table().data(), entry.sampled(), entry.size(),
                     query.quantiles(), eps, probe_order, early_exit_below);
}

std::vector<Dim> SignatureProbeOrder(const CommunitySignature& query) {
  std::vector<Dim> order(query.d());
  std::iota(order.begin(), order.end(), Dim{0});
  std::sort(order.begin(), order.end(), [&](Dim a, Dim b) {
    const Count min_a = query.DimTable(a)[0];
    const Count min_b = query.DimTable(b)[0];
    if (min_a != min_b) return min_a > min_b;
    return a < b;
  });
  return order;
}

Dim SignatureHomeDim(const CommunitySignature& signature) {
  if (signature.d() == 0) return 0;
  Dim best = 0;
  Count best_min = signature.DimTable(0)[0];
  for (Dim k = 1; k < signature.d(); ++k) {
    const Count min_k = signature.DimTable(k)[0];
    if (min_k > best_min) {
      best = k;
      best_min = min_k;
    }
  }
  return best;
}

SignatureIndex::SignatureIndex(uint32_t shards,
                               const SignatureOptions& options)
    : options_(options), shards_(std::max(shards, 1u)) {
  options_.quantiles = ClampQuantiles(options_.quantiles);
}

void SignatureIndex::Install(uint32_t shard_index, uint64_t id,
                             uint64_t version,
                             std::shared_ptr<const CommunitySignature> signature) {
  CSJ_CHECK(shard_index < shards_.size());
  CSJ_CHECK(signature != nullptr);
  CSJ_CHECK(signature->quantiles() == options_.quantiles)
      << "signature resolution does not match the index";
  InstallSlot(shards_[shard_index], id, version, std::move(signature));
}

void SignatureIndex::InstallSlot(
    Shard& shard, uint64_t id, uint64_t version,
    std::shared_ptr<const CommunitySignature> signature) {
  auto it = shard.locate.find(id);
  if (it != shard.locate.end()) {
    // Replace: drop the old slot first — the community may have changed
    // dimensionality or home category, which moves it to another pack.
    RemoveSlot(shard, it->second.first, it->second.second);
  }
  const Dim d = signature->d();
  const PackKey key{d, SignatureHomeDim(*signature)};
  Pack& pack = shard.packs[key];
  if (pack.stride == 0) {
    pack.d = d;
    pack.stride = static_cast<uint32_t>(d) * (options_.quantiles + 1);
  }
  const uint32_t slot = static_cast<uint32_t>(pack.ids.size());
  pack.ids.push_back(id);
  pack.versions.push_back(version);
  pack.sizes.push_back(signature->size());
  pack.sampled.push_back(signature->sampled());
  pack.table.insert(pack.table.end(), signature->table().begin(),
                    signature->table().end());
  // Widen the coarse summary (never shrink — see the header note).
  if (pack.dim_min.empty()) {
    pack.dim_min.assign(d, 0);
    pack.dim_max.assign(d, 0);
    for (Dim k = 0; k < d; ++k) {
      const auto row = signature->DimTable(k);
      pack.dim_min[k] = row[0];
      pack.dim_max[k] = row[signature->quantiles()];
    }
    pack.min_size = signature->size();
  } else {
    for (Dim k = 0; k < d; ++k) {
      const auto row = signature->DimTable(k);
      pack.dim_min[k] = std::min(pack.dim_min[k], row[0]);
      pack.dim_max[k] = std::max(pack.dim_max[k], row[signature->quantiles()]);
    }
    pack.min_size = std::min(pack.min_size, signature->size());
  }
  pack.signatures.push_back(std::move(signature));
  shard.locate[id] = {key, slot};
}

void SignatureIndex::InstallBatch(uint32_t shard_index,
                                  std::span<SlotInstall> batch) {
  CSJ_CHECK(shard_index < shards_.size());
  Shard& shard = shards_[shard_index];
  // Reservation pass: upper-bound each target pack's growth so the
  // install loop never reallocates mid-batch. Replacements free their
  // old slot, so this can over-reserve — that only pads capacity.
  std::map<PackKey, size_t> growth;
  for (const SlotInstall& element : batch) {
    CSJ_CHECK(element.signature != nullptr);
    CSJ_CHECK(element.signature->quantiles() == options_.quantiles)
        << "signature resolution does not match the index";
    ++growth[{element.signature->d(), SignatureHomeDim(*element.signature)}];
  }
  for (const auto& [key, count] : growth) {
    Pack& pack = shard.packs[key];
    const size_t target = pack.ids.size() + count;
    const size_t stride =
        static_cast<size_t>(key.first) * (options_.quantiles + 1);
    pack.ids.reserve(target);
    pack.versions.reserve(target);
    pack.sizes.reserve(target);
    pack.sampled.reserve(target);
    pack.table.reserve(target * stride);
    pack.signatures.reserve(target);
  }
  shard.locate.reserve(shard.locate.size() + batch.size());
  for (SlotInstall& element : batch) {
    InstallSlot(shard, element.id, element.version,
                std::move(element.signature));
  }
}

bool SignatureIndex::Remove(uint32_t shard_index, uint64_t id) {
  CSJ_CHECK(shard_index < shards_.size());
  Shard& shard = shards_[shard_index];
  auto it = shard.locate.find(id);
  if (it == shard.locate.end()) return false;
  RemoveSlot(shard, it->second.first, it->second.second);
  return true;
}

void SignatureIndex::RemoveSlot(Shard& shard, PackKey key, uint32_t slot) {
  auto pack_it = shard.packs.find(key);
  CSJ_CHECK(pack_it != shard.packs.end());
  Pack& pack = pack_it->second;
  const uint32_t last = static_cast<uint32_t>(pack.ids.size()) - 1;
  shard.locate.erase(pack.ids[slot]);
  if (slot != last) {
    // Swap-with-last keeps the columns dense; only the moved id's locate
    // entry needs fixing.
    pack.ids[slot] = pack.ids[last];
    pack.versions[slot] = pack.versions[last];
    pack.sizes[slot] = pack.sizes[last];
    pack.sampled[slot] = pack.sampled[last];
    std::memcpy(pack.table.data() + static_cast<size_t>(slot) * pack.stride,
                pack.table.data() + static_cast<size_t>(last) * pack.stride,
                static_cast<size_t>(pack.stride) * sizeof(Count));
    pack.signatures[slot] = std::move(pack.signatures[last]);
    shard.locate[pack.ids[slot]] = {key, slot};
  }
  pack.ids.pop_back();
  pack.versions.pop_back();
  pack.sizes.pop_back();
  pack.sampled.pop_back();
  pack.table.resize(pack.table.size() - pack.stride);
  pack.signatures.pop_back();
}

namespace {

/// Certifies that EVERY slot of `pack` fails the per-slot cap check at
/// `threshold`, from the pack's coarse summary alone. One skip proof in
/// any single dimension suffices; all three proofs below lower-bound the
/// per-slot sweep's own verdict, so a skipped pack contributes no
/// candidate the slot-by-slot path would have admitted:
///
///  - span disjointness: every slot user in k is >= that slot's smallest
///    breakpoint >= dim_min[k]; if the query's eps-extended span in k
///    ends below dim_min[k], every slot's in_entry count is exactly 0,
///    so every cap is 0 < threshold. Symmetrically for dim_max[k] below
///    the span's start.
///  - counting: any slot's in_query count is SignatureCountUpperBound of
///    the query row against THAT slot's eps-extended span, which lies
///    inside [dim_min[k] - eps, dim_max[k] + eps]; the bound is monotone
///    under interval widening, so `ub` dominates every slot's in_query.
///    Any slot's cap denominator bn = min(query, slot size) >= m, and
///    IEEE division is correctly rounded hence monotone in both
///    operands, so double(in_query)/double(bn) <= double(ub)/double(m)
///    slot by slot — the comparison is done in the SAME double
///    arithmetic as the per-slot check on purpose (a threshold*m product
///    form could disagree with it by an ulp).
bool DimProvesPackBelow(const CommunitySignature& query_sig, Epsilon eps,
                        double threshold, double denom, Dim k,
                        std::span<const Count> dim_min,
                        std::span<const Count> dim_max) {
  const uint32_t quantiles = query_sig.quantiles();
  const auto row = query_sig.DimTable(k);
  const int64_t pack_lo = static_cast<int64_t>(dim_min[k]);
  const int64_t pack_hi = static_cast<int64_t>(dim_max[k]);
  if (static_cast<int64_t>(row[quantiles]) + eps < pack_lo) return true;
  if (static_cast<int64_t>(row[0]) - eps > pack_hi) return true;
  const uint32_t ub = SignatureCountUpperBound(row, query_sig.sampled(),
                                               pack_lo - eps, pack_hi + eps);
  return static_cast<double>(ub) / denom < threshold;
}

bool PackBelowThreshold(const CommunitySignature& query_sig, Epsilon eps,
                        double threshold, std::span<const Dim> probe_order,
                        Dim pack_home, std::span<const Count> dim_min,
                        std::span<const Count> dim_max, uint32_t min_size) {
  const uint32_t m = std::min(query_sig.size(), min_size);
  if (m == 0) return false;
  const double denom = static_cast<double>(m);
  // The pack's home dimension is where same-home slots all hold large
  // counters and unrelated queries hold few, so it proves most skips —
  // try it first. Which dimension fires does not affect the outcome
  // (skip iff ANY dimension proves it).
  if (DimProvesPackBelow(query_sig, eps, threshold, denom, pack_home, dim_min,
                         dim_max)) {
    return true;
  }
  for (Dim k : probe_order) {
    if (k == pack_home) continue;
    if (DimProvesPackBelow(query_sig, eps, threshold, denom, k, dim_min,
                           dim_max)) {
      return true;
    }
  }
  return false;
}

}  // namespace

void SignatureIndex::ProbeShard(uint32_t shard_index, const ProbeQuery& query,
                                std::vector<PrescreenCandidate>* out,
                                PrescreenStats* stats) const {
  CSJ_CHECK(shard_index < shards_.size());
  CSJ_CHECK(query.signature != nullptr);
  CSJ_CHECK(query.probe_order.size() == query.signature->d());
  const Shard& shard = shards_[shard_index];
  const CommunitySignature& query_sig = *query.signature;
  const uint32_t query_size = query_sig.size();
  const uint32_t quantiles = query_sig.quantiles();
  for (const auto& [key, pack] : shard.packs) {
    const uint64_t slots = pack.ids.size();
    if (slots == 0) continue;
    stats->examined += slots;
    if (key.first != query_sig.d()) {
      // A whole pack of differently-dimensioned entries rejects for free
      // (the scan path counts these as inadmissible, one by one).
      stats->skipped_dim += slots;
      continue;
    }
    if (query.threshold > 0 &&
        PackBelowThreshold(query_sig, query.eps, query.threshold,
                           query.probe_order, key.second, pack.dim_min,
                           pack.dim_max, pack.min_size)) {
      // Second filter level: the coarse summary certifies every slot
      // below threshold, so the whole pack is dismissed in one check.
      // Inert probes (threshold <= 0) never take this path — they must
      // enumerate every slot.
      stats->skipped_cap += slots;
      ++stats->packs_skipped;
      continue;
    }
    for (uint32_t slot = 0; slot < slots; ++slot) {
      const uint32_t entry_size = pack.sizes[slot];
      const uint32_t smaller = std::min(query_size, entry_size);
      const uint32_t larger = std::max(query_size, entry_size);
      if (!SizesAdmissible(smaller, larger)) {
        ++stats->skipped_inadmissible;
        continue;
      }
      const double cap = CapOverRows(
          query_sig.table().data(), query_sig.sampled(), query_size,
          pack.table.data() + static_cast<size_t>(slot) * pack.stride,
          pack.sampled[slot], entry_size, quantiles, query.eps,
          query.probe_order, query.threshold);
      if (cap >= query.threshold) {
        ++stats->passed;
        out->push_back({pack.ids[slot], pack.versions[slot]});
      } else {
        ++stats->skipped_cap;
      }
    }
  }
}

std::shared_ptr<const CommunitySignature> SignatureIndex::Lookup(
    uint32_t shard_index, uint64_t id, uint64_t* version) const {
  CSJ_CHECK(shard_index < shards_.size());
  const Shard& shard = shards_[shard_index];
  auto it = shard.locate.find(id);
  if (it == shard.locate.end()) return nullptr;
  const auto& pack = shard.packs.at(it->second.first);
  if (version != nullptr) *version = pack.versions[it->second.second];
  return pack.signatures[it->second.second];
}

uint64_t SignatureIndex::size() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) total += shard.locate.size();
  return total;
}

size_t SignatureIndex::MemoryBytes() const {
  size_t total = sizeof(*this);
  for (const Shard& shard : shards_) {
    for (const auto& [key, pack] : shard.packs) {
      total += pack.ids.capacity() * sizeof(uint64_t) +
               pack.versions.capacity() * sizeof(uint64_t) +
               pack.sizes.capacity() * sizeof(uint32_t) +
               pack.sampled.capacity() * sizeof(uint32_t) +
               pack.table.capacity() * sizeof(Count) +
               (pack.dim_min.capacity() + pack.dim_max.capacity()) *
                   sizeof(Count);
      for (const auto& sig : pack.signatures) {
        if (sig != nullptr) total += sig->MemoryBytes();
      }
    }
    total += shard.locate.size() *
             (sizeof(uint64_t) + sizeof(std::pair<PackKey, uint32_t>));
  }
  return total;
}

}  // namespace csj
