#include "core/encoding_cache.h"

#include <algorithm>
#include <mutex>
#include <shared_mutex>
#include <utility>

#include "ego/dimension_reorder.h"

namespace csj {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

inline uint64_t FnvMix(uint64_t h, uint64_t v) {
  h ^= v;
  return h * kFnvPrime;
}

/// Entry kinds share one fingerprint space; the salt folds the kind tag
/// and the build parameters so e.g. (fp, eps=1) EncodedB and EncodedA
/// entries never collide.
enum class EntryKind : uint64_t {
  kEncodedB = 1,
  kEncodedA = 2,
  kCommunityWindow = 3,
  kDimensionOrder = 4,
  kSuperEgoPrep = 5,
};

uint64_t SaltOf(EntryKind kind, uint64_t p0 = 0, uint64_t p1 = 0,
                uint64_t p2 = 0, uint64_t p3 = 0) {
  uint64_t h = kFnvOffset;
  h = FnvMix(h, static_cast<uint64_t>(kind));
  h = FnvMix(h, p0);
  h = FnvMix(h, p1);
  h = FnvMix(h, p2);
  h = FnvMix(h, p3);
  return h;
}

using BuiltEntry = std::pair<std::shared_ptr<const void>, size_t>;

}  // namespace

CommunityDigest DigestCommunity(const Community& community) {
  CommunityDigest digest;
  // Four interleaved FNV lanes, folded at the end. A single lane
  // serializes on the multiply's latency — one mix per counter, each
  // waiting on the last — which makes the digest a fixed ~5 cycles per
  // counter no matter how wide the core is. Independent accumulators
  // overlap the multiplies; each counter still lands in exactly one
  // position-sensitive lane, so any mutation changes the fold input.
  const auto flat = community.flat();
  const size_t n = flat.size();
  // The digest is usually a community buffer's first touch since it was
  // built (catalog ingest digests long after the generator ran), so this
  // loop is a latency-bound DRAM walk without help: stream-prefetch a
  // kilobyte ahead to keep the line fills overlapped.
  constexpr size_t kPrefetchAhead = 256;  // counters = 1 KiB
  uint64_t h0 = kFnvOffset;
  uint64_t h1 = kFnvOffset ^ 0x9E3779B97F4A7C15ULL;
  uint64_t h2 = kFnvOffset ^ 0xC2B2AE3D27D4EB4FULL;
  uint64_t h3 = kFnvOffset ^ 0x165667B19E3779F9ULL;
  Count max_counter = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    if (i + kPrefetchAhead < n) __builtin_prefetch(&flat[i + kPrefetchAhead]);
    h0 = FnvMix(h0, flat[i]);
    h1 = FnvMix(h1, flat[i + 1]);
    h2 = FnvMix(h2, flat[i + 2]);
    h3 = FnvMix(h3, flat[i + 3]);
    max_counter = std::max(
        {max_counter, flat[i], flat[i + 1], flat[i + 2], flat[i + 3]});
  }
  for (; i < n; ++i) {
    h0 = FnvMix(h0, flat[i]);
    max_counter = std::max(max_counter, flat[i]);
  }
  uint64_t h = kFnvOffset;
  h = FnvMix(h, community.d());
  h = FnvMix(h, community.size());
  h = FnvMix(h, h0);
  h = FnvMix(h, h1);
  h = FnvMix(h, h2);
  h = FnvMix(h, h3);
  digest.fingerprint = h;
  digest.max_counter = max_counter;
  return digest;
}

uint64_t HashDimOrder(const std::vector<Dim>& order) {
  uint64_t h = kFnvOffset;
  h = FnvMix(h, order.size());
  for (const Dim k : order) h = FnvMix(h, k);
  return h;
}

SuperEgoPrep BuildSuperEgoPrep(const Community& community, Count max_count,
                               Epsilon eps, const std::vector<Dim>& dim_order,
                               uint32_t threshold) {
  ego::NormalizedData data =
      ego::Normalize(community, max_count, eps, dim_order);
  ego::SegmentTree tree(ego::CellsOf(data), threshold);
  VerifyWindowF window;
  window.Assign(data.size(), data.d, [&](uint32_t i) { return data.Row(i); });
  return SuperEgoPrep{std::move(data), std::move(tree), std::move(window)};
}

EncodingCache::EncodingCache(size_t capacity_bytes)
    : capacity_bytes_(capacity_bytes),
      shard_capacity_bytes_(
          capacity_bytes == 0
              ? 0
              : std::max<size_t>(1, capacity_bytes / kShards)),
      shards_(kShards) {}

EncodingCache::~EncodingCache() = default;

size_t EncodingCache::KeyHash::operator()(const Key& key) const {
  return static_cast<size_t>(
      FnvMix(FnvMix(kFnvOffset, key.fingerprint), key.salt));
}

EncodingCache::Shard& EncodingCache::ShardOf(const Key& key) {
  return shards_[KeyHash{}(key) % kShards];
}

void EncodingCache::EvictLocked(Shard& shard) {
  if (capacity_bytes_ == 0) return;
  while (shard.bytes > shard_capacity_bytes_ &&
         !shard.insertion_order.empty()) {
    const Key victim = shard.insertion_order.front();
    shard.insertion_order.pop_front();
    const auto it = shard.map.find(victim);
    if (it == shard.map.end() || !it->second.ready) continue;
    shard.bytes -= it->second.bytes;
    shard.map.erase(it);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

template <typename T, typename BuildFn>
std::shared_ptr<const T> EncodingCache::GetOrBuild(const Key& key,
                                                   BuildFn&& build,
                                                   JoinStats* stats) {
  Shard& shard = ShardOf(key);
  {
    // Fast path: SHARED lock only. The steady state of an all-pairs run
    // is 100% hits, and readers of one shard must not serialize — the
    // exclusive-mutex version of this probe was the dominant contention
    // source when cross-couple threads shared a hot cache.
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      // Hit. An in-flight slot counts too — the waiter did not build —
      // which is what keeps the hit/miss totals independent of thread
      // interleaving: misses == builds == unique keys (absent eviction).
      if (it->second.value != nullptr) {
        // Completed (or warm-inserted) slot: hand out the value without
        // the shared_future round-trip. Warm-inserted slots have no
        // future, so this branch is mandatory for them.
        const std::shared_ptr<const void> value = it->second.value;
        lock.unlock();
        hits_.fetch_add(1, std::memory_order_relaxed);
        if (stats != nullptr) ++stats->cache_hits;
        return std::static_pointer_cast<const T>(value);
      }
      const std::shared_future<std::shared_ptr<const void>> future =
          it->second.future;
      lock.unlock();
      hits_.fetch_add(1, std::memory_order_relaxed);
      if (stats != nullptr) ++stats->cache_hits;
      return std::static_pointer_cast<const T>(future.get());
    }
  }

  std::promise<std::shared_ptr<const void>> promise;
  uint64_t token = 0;
  {
    // Double-checked upgrade: another thread may have inserted the slot
    // between the shared probe and this exclusive lock.
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      if (it->second.value != nullptr) {
        const std::shared_ptr<const void> value = it->second.value;
        lock.unlock();
        hits_.fetch_add(1, std::memory_order_relaxed);
        if (stats != nullptr) ++stats->cache_hits;
        return std::static_pointer_cast<const T>(value);
      }
      const std::shared_future<std::shared_ptr<const void>> future =
          it->second.future;
      lock.unlock();
      hits_.fetch_add(1, std::memory_order_relaxed);
      if (stats != nullptr) ++stats->cache_hits;
      return std::static_pointer_cast<const T>(future.get());
    }
    token = next_token_.fetch_add(1, std::memory_order_relaxed);
    Slot slot;
    slot.future = promise.get_future().share();
    slot.token = token;
    shard.map.emplace(key, std::move(slot));
  }

  // Miss: this thread owns the build and runs it OUTSIDE the shard lock,
  // so concurrent lookups of other keys (and waiters of this one, who
  // block on the future, not the mutex) proceed unhindered.
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (stats != nullptr) ++stats->cache_misses;
  const BuiltEntry built = build();
  promise.set_value(built.first);
  bytes_built_.fetch_add(built.second, std::memory_order_relaxed);
  if (stats != nullptr) stats->cache_bytes_built += built.second;

  {
    std::lock_guard<std::shared_mutex> lock(shard.mu);
    const auto it = shard.map.find(key);
    // The token check covers a Clear() (or a Clear + re-insert by another
    // thread) racing the build: only the slot THIS call inserted is
    // promoted to resident; otherwise the result is handed out but never
    // counted against the budget.
    if (it != shard.map.end() && it->second.token == token) {
      it->second.value = built.first;
      it->second.bytes = built.second;
      it->second.ready = true;
      shard.bytes += built.second;
      shard.insertion_order.push_back(key);
      EvictLocked(shard);
    }
  }
  return std::static_pointer_cast<const T>(built.first);
}

void EncodingCache::PutReady(const Key& key, std::shared_ptr<const void> value,
                             size_t bytes) {
  // The caller built the artifact whether or not it lands, so the
  // miss/build counters tick unconditionally — same totals as if the
  // caller had gone through GetOrBuild on a cold key.
  misses_.fetch_add(1, std::memory_order_relaxed);
  bytes_built_.fetch_add(bytes, std::memory_order_relaxed);
  Shard& shard = ShardOf(key);
  std::lock_guard<std::shared_mutex> lock(shard.mu);
  Slot slot;
  slot.value = std::move(value);
  slot.token = next_token_.fetch_add(1, std::memory_order_relaxed);
  slot.bytes = bytes;
  slot.ready = true;
  const auto [it, inserted] = shard.map.emplace(key, std::move(slot));
  if (!inserted) return;  // resident or in-flight entry wins
  shard.bytes += bytes;
  shard.insertion_order.push_back(key);
  EvictLocked(shard);
}

void EncodingCache::Reserve(size_t additional_entries) {
  // Salted-fingerprint keys spread uniformly, so each shard expects
  // ~1/kShards of the batch (plus one for rounding).
  const size_t per_shard = additional_entries / kShards + 1;
  for (Shard& shard : shards_) {
    std::lock_guard<std::shared_mutex> lock(shard.mu);
    shard.map.reserve(shard.map.size() + per_shard);
  }
}

std::shared_ptr<const EncodedB> EncodingCache::GetEncodedB(
    const Community& b, const CommunityDigest& digest, Epsilon eps,
    uint32_t parts, JoinStats* stats) {
  const Key key{digest.fingerprint, SaltOf(EntryKind::kEncodedB, eps, parts)};
  return GetOrBuild<EncodedB>(
      key,
      [&]() -> BuiltEntry {
        auto ptr = std::make_shared<const EncodedB>(
            b, Encoder(b.d(), eps, parts));
        return {ptr, sizeof(EncodedB) + ptr->MemoryBytes()};
      },
      stats);
}

std::shared_ptr<const EncodedA> EncodingCache::GetEncodedA(
    const Community& a, const CommunityDigest& digest, Epsilon eps,
    uint32_t parts, JoinStats* stats) {
  const Key key{digest.fingerprint, SaltOf(EntryKind::kEncodedA, eps, parts)};
  return GetOrBuild<EncodedA>(
      key,
      [&]() -> BuiltEntry {
        auto ptr = std::make_shared<const EncodedA>(
            a, Encoder(a.d(), eps, parts));
        return {ptr, sizeof(EncodedA) + ptr->MemoryBytes()};
      },
      stats);
}

std::shared_ptr<const VerifyWindow> EncodingCache::GetCommunityWindow(
    const Community& community, const CommunityDigest& digest,
    JoinStats* stats) {
  const Key key{digest.fingerprint, SaltOf(EntryKind::kCommunityWindow)};
  return GetOrBuild<VerifyWindow>(
      key,
      [&]() -> BuiltEntry {
        auto ptr = std::make_shared<VerifyWindow>();
        ptr->Assign(community.size(), community.d(),
                    [&](uint32_t i) { return community.User(i); });
        return {ptr, sizeof(VerifyWindow) + ptr->MemoryBytes()};
      },
      stats);
}

std::shared_ptr<const std::vector<Dim>> EncodingCache::GetDimensionOrder(
    const Community& b, const Community& a, const CommunityDigest& digest_b,
    const CommunityDigest& digest_a, Epsilon eps, Count max_count,
    JoinStats* stats) {
  // ComputeDimensionOrder's histogram is commutative in its two
  // communities, so the couple key uses the UNORDERED fingerprint pair:
  // both orientations of a couple share one entry.
  const uint64_t fp_lo =
      std::min(digest_b.fingerprint, digest_a.fingerprint);
  const uint64_t fp_hi =
      std::max(digest_b.fingerprint, digest_a.fingerprint);
  const Key key{FnvMix(FnvMix(kFnvOffset, fp_lo), fp_hi),
                SaltOf(EntryKind::kDimensionOrder, eps, max_count)};
  return GetOrBuild<std::vector<Dim>>(
      key,
      [&]() -> BuiltEntry {
        auto ptr = std::make_shared<const std::vector<Dim>>(
            ego::ComputeDimensionOrder(b, a, eps, max_count));
        return {ptr, sizeof(std::vector<Dim>) + ptr->capacity() * sizeof(Dim)};
      },
      stats);
}

std::shared_ptr<const SuperEgoPrep> EncodingCache::GetSuperEgoPrep(
    const Community& community, const CommunityDigest& digest, Epsilon eps,
    Count max_count, const std::vector<Dim>& dim_order, uint64_t order_hash,
    uint32_t threshold, JoinStats* stats) {
  const Key key{digest.fingerprint,
                SaltOf(EntryKind::kSuperEgoPrep, eps, max_count, order_hash,
                       threshold)};
  return GetOrBuild<SuperEgoPrep>(
      key,
      [&]() -> BuiltEntry {
        auto ptr = std::make_shared<const SuperEgoPrep>(BuildSuperEgoPrep(
            community, max_count, eps, dim_order, threshold));
        return {ptr, sizeof(SuperEgoPrep) + ptr->MemoryBytes()};
      },
      stats);
}

void EncodingCache::PutEncodedB(const CommunityDigest& digest, Epsilon eps,
                                uint32_t parts,
                                std::shared_ptr<const EncodedB> encoded) {
  const Key key{digest.fingerprint, SaltOf(EntryKind::kEncodedB, eps, parts)};
  const size_t bytes = sizeof(EncodedB) + encoded->MemoryBytes();
  PutReady(key, std::move(encoded), bytes);
}

void EncodingCache::PutEncodedA(const CommunityDigest& digest, Epsilon eps,
                                uint32_t parts,
                                std::shared_ptr<const EncodedA> encoded) {
  const Key key{digest.fingerprint, SaltOf(EntryKind::kEncodedA, eps, parts)};
  const size_t bytes = sizeof(EncodedA) + encoded->MemoryBytes();
  PutReady(key, std::move(encoded), bytes);
}

void EncodingCache::PutCommunityWindow(
    const CommunityDigest& digest, std::shared_ptr<const VerifyWindow> window) {
  const Key key{digest.fingerprint, SaltOf(EntryKind::kCommunityWindow)};
  const size_t bytes = sizeof(VerifyWindow) + window->MemoryBytes();
  PutReady(key, std::move(window), bytes);
}

void EncodingCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::shared_mutex> lock(shard.mu);
    shard.map.clear();
    shard.insertion_order.clear();
    shard.bytes = 0;
  }
}

EncodingCache::Stats EncodingCache::GetStats() const {
  Stats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.bytes_built = bytes_built_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  for (const Shard& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    stats.entries += shard.map.size();
    stats.bytes += shard.bytes;
  }
  return stats;
}

void EncodingCache::ResetStats() {
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  bytes_built_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
}

}  // namespace csj
