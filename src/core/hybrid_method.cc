#include "core/hybrid_method.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "core/encoding.h"
#include "core/encoding_cache.h"
#include "core/epsilon_predicate.h"
#include "core/join_scratch.h"
#include "core/leaf_tasks.h"
#include "ego/dimension_reorder.h"
#include "ego/ego_join.h"
#include "ego/integer_grid.h"
#include "matching/matcher.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace csj {

namespace {

/// Everything both hybrid variants share: the integer grids, their
/// segment trees, and the MinMax encoded-filter sidecars aligned to grid
/// row order. The encoding is computed over the PERMUTED dimensions —
/// both sides use the same permutation, so the per-dimension matching
/// guarantee (and thus the filter's no-false-dismissal property) is
/// unaffected.
struct HybridPrepared {
  ego::IntegerGridData b;
  ego::IntegerGridData a;
  ego::SegmentTree tree_b;
  ego::SegmentTree tree_a;
  uint32_t parts = 0;

  // Per B row: encoded id and part sums (rows * parts).
  std::vector<uint64_t> b_id;
  std::vector<uint64_t> b_sums;
  // Per A row: encoded min/max and part ranges (rows * parts).
  std::vector<uint64_t> a_min;
  std::vector<uint64_t> a_max;
  std::vector<uint64_t> a_lo;
  std::vector<uint64_t> a_hi;

  // A's grid rows as an SoA window for batched leaf verification. The
  // grids themselves are couple-shaped (the dimension permutation is
  // couple-driven) and stay uncached; only the dimension order goes
  // through the encoding cache.
  VerifyWindow window_a;

  /// The MinMax filter for one (B row, A row) pair.
  bool EncodedFilterPasses(uint32_t rb, uint32_t ra) const {
    const uint64_t id = b_id[rb];
    if (id < a_min[ra] || id > a_max[ra]) return false;
    const size_t bo = static_cast<size_t>(rb) * parts;
    const size_t ao = static_cast<size_t>(ra) * parts;
    for (uint32_t p = 0; p < parts; ++p) {
      const uint64_t sum = b_sums[bo + p];
      if (sum < a_lo[ao + p] || sum > a_hi[ao + p]) return false;
    }
    return true;
  }
};

HybridPrepared PrepareHybrid(const Community& b, const Community& a,
                             const JoinOptions& options, JoinStats* stats) {
  CSJ_CHECK_EQ(b.d(), a.d());
  const Epsilon eps = std::max<Epsilon>(options.eps, 1);
  std::shared_ptr<const std::vector<Dim>> cached_order;
  std::vector<Dim> local_order;
  const std::vector<Dim>* order;
  if (!options.superego_reorder_dims) {
    local_order = ego::IdentityOrder(b.d());
    order = &local_order;
  } else if (options.cache != nullptr) {
    // Reuse the couple's cached reorder; the digests also carry the max
    // counters, sparing the two MaxCounter passes.
    const CommunityDigest digest_b = DigestCommunity(b);
    const CommunityDigest digest_a = DigestCommunity(a);
    Count max_count = std::max(digest_b.max_counter, digest_a.max_counter);
    if (max_count == 0) max_count = 1;
    cached_order = options.cache->GetDimensionOrder(
        b, a, digest_b, digest_a, eps, max_count, stats);
    order = cached_order.get();
  } else {
    Count max_count = std::max(b.MaxCounter(), a.MaxCounter());
    if (max_count == 0) max_count = 1;
    local_order = ego::ComputeDimensionOrder(b, a, eps, max_count);
    order = &local_order;
  }

  ego::IntegerGridData grid_b = ego::BuildIntegerGrid(b, eps, *order);
  ego::IntegerGridData grid_a = ego::BuildIntegerGrid(a, eps, *order);
  const uint32_t threshold = std::max<uint32_t>(options.superego_threshold, 2);
  ego::SegmentTree tree_b(ego::CellsOf(grid_b), threshold);
  ego::SegmentTree tree_a(ego::CellsOf(grid_a), threshold);

  HybridPrepared prep{std::move(grid_b), std::move(grid_a),
                      std::move(tree_b), std::move(tree_a),
                      /*parts=*/0,       {}, {}, {}, {}, {}, {}, {}};
  if (options.batch_verify) {
    prep.window_a.Assign(prep.a.size(), b.d(),
                         [&](uint32_t row) { return prep.a.Row(row); });
  }

  if (options.hybrid_encoded_leaf) {
    const Encoder encoder(b.d(), options.eps, options.encoding_parts);
    prep.parts = encoder.parts();
    const uint32_t nb = prep.b.size();
    prep.b_id.resize(nb);
    prep.b_sums.resize(static_cast<size_t>(nb) * prep.parts);
    for (uint32_t row = 0; row < nb; ++row) {
      const std::span<const Count> vec = prep.b.Row(row);
      prep.b_id[row] = encoder.EncodedId(vec);
      encoder.PartSumsInto(
          vec, {prep.b_sums.data() + static_cast<size_t>(row) * prep.parts,
                prep.parts});
    }
    const uint32_t na = prep.a.size();
    prep.a_min.resize(na);
    prep.a_max.resize(na);
    prep.a_lo.resize(static_cast<size_t>(na) * prep.parts);
    prep.a_hi.resize(static_cast<size_t>(na) * prep.parts);
    for (uint32_t row = 0; row < na; ++row) {
      const size_t offset = static_cast<size_t>(row) * prep.parts;
      const std::span<uint64_t> lo{prep.a_lo.data() + offset, prep.parts};
      const std::span<uint64_t> hi{prep.a_hi.data() + offset, prep.parts};
      encoder.PartRangesInto(prep.a.Row(row), lo, hi);
      uint64_t min_sum = 0;
      uint64_t max_sum = 0;
      for (uint32_t p = 0; p < prep.parts; ++p) {
        min_sum += lo[p];
        max_sum += hi[p];
      }
      prep.a_min[row] = min_sum;
      prep.a_max[row] = max_sum;
    }
  }
  return prep;
}

}  // namespace

JoinResult ApMinMaxEgoJoin(const Community& b, const Community& a,
                           const JoinOptions& options) {
  util::Timer timer;
  JoinResult result;
  result.method = "Ap-MinMaxEGO";
  result.size_b = b.size();

  const HybridPrepared prep = PrepareHybrid(b, a, options, &result.stats);
  const bool use_filter = options.hybrid_encoded_leaf;
  const Epsilon eps = options.eps;
  // Match flags live in per-thread scratch, reused across joins.
  internal::JoinScratch& scratch = internal::GetJoinScratch();
  std::vector<uint8_t>& matched_b = scratch.matched_b;
  std::vector<uint8_t>& used_a = scratch.used_a;
  matched_b.assign(prep.b.size(), 0);
  used_a.assign(prep.a.size(), 0);

  ego::EgoStats ego_stats;
  LazyBatchVerifier<Count, Epsilon> verifier;
  ego::EgoJoin(
      prep.tree_b, prep.tree_a,
      [&](uint32_t b_lo, uint32_t b_hi, uint32_t a_lo, uint32_t a_hi) {
        const bool batched =
            options.batch_verify && a_hi - a_lo >= kEpsilonBlock;
        for (uint32_t rb = b_lo; rb < b_hi; ++rb) {
          if (matched_b[rb]) continue;
          const std::span<const Count> vb = prep.b.Row(rb);
          if (batched) verifier.Start(prep.window_a, vb, eps, a_hi);
          for (uint32_t ra = a_lo; ra < a_hi; ++ra) {
            if (used_a[ra]) continue;
            if (use_filter && !prep.EncodedFilterPasses(rb, ra)) {
              result.stats.Count(Event::kNoOverlap);
              continue;
            }
            const bool match = batched
                                   ? verifier.Matches(ra)
                                   : EpsilonMatches(vb, prep.a.Row(ra), eps);
            result.stats.Count(match ? Event::kMatch : Event::kNoMatch);
            if (match) {
              matched_b[rb] = 1;
              used_a[ra] = 1;
              result.pairs.push_back(
                  MatchedPair{prep.b.ids[rb], prep.a.ids[ra]});
              break;
            }
          }
        }
      },
      &ego_stats);

  result.stats.min_prunes = ego_stats.strategy_prunes;
  result.stats.seconds = timer.Seconds();
  return result;
}

JoinResult ExMinMaxEgoJoin(const Community& b, const Community& a,
                           const JoinOptions& options) {
  util::Timer timer;
  JoinResult result;
  result.method = "Ex-MinMaxEGO";
  result.size_b = b.size();

  const HybridPrepared prep = PrepareHybrid(b, a, options, &result.stats);
  const bool use_filter = options.hybrid_encoded_leaf;
  const Epsilon eps = options.eps;

  // Like Ex-SuperEGO: prune with the recursion, then scan the surviving
  // leaves in parallel chunks merged in task order.
  ego::EgoStats ego_stats;
  const std::vector<internal::LeafTask> tasks =
      internal::CollectLeafTasks(prep.tree_b, prep.tree_a, &ego_stats);
  const uint32_t threads = std::max<uint32_t>(options.join_threads, 1);
  const auto num_tasks = static_cast<uint32_t>(tasks.size());
  const uint32_t chunks = util::ParallelChunks(0, num_tasks, threads);
  const std::span<internal::ChunkSlot> slots =
      internal::GetJoinScratch().chunk_arenas.Acquire(chunks);
  util::ParallelFor(
      0, num_tasks, threads,
      [&](uint32_t task_begin, uint32_t task_end, uint32_t chunk) {
        std::vector<MatchedPair>& local = slots[chunk].edges;
        JoinStats& stats = slots[chunk].stats;
        // The encoded filter punches holes in the run, so the lazy
        // chunked verifier (which only spends kernel lanes on queried
        // regions) fits better than a full-run mask here.
        LazyBatchVerifier<Count, Epsilon> verifier;
        for (uint32_t t = task_begin; t < task_end; ++t) {
          const internal::LeafTask& task = tasks[t];
          const bool batched = options.batch_verify &&
                               task.a_hi - task.a_lo >= kEpsilonBlock;
          for (uint32_t rb = task.b_lo; rb < task.b_hi; ++rb) {
            const std::span<const Count> vb = prep.b.Row(rb);
            if (batched) verifier.Start(prep.window_a, vb, eps, task.a_hi);
            for (uint32_t ra = task.a_lo; ra < task.a_hi; ++ra) {
              if (use_filter && !prep.EncodedFilterPasses(rb, ra)) {
                stats.Count(Event::kNoOverlap);
                continue;
              }
              const bool match = batched
                                     ? verifier.Matches(ra)
                                     : EpsilonMatches(vb, prep.a.Row(ra), eps);
              stats.Count(match ? Event::kMatch : Event::kNoMatch);
              if (match) {
                local.push_back(MatchedPair{prep.b.ids[rb], prep.a.ids[ra]});
              }
            }
          }
        }
      },
      options.pool);

  // Chunk-order merge into per-thread scratch (serial-identical, and the
  // buffer's capacity survives across joins).
  std::vector<MatchedPair>& candidates = internal::GetJoinScratch().candidates;
  candidates.clear();
  for (uint32_t chunk = 0; chunk < chunks; ++chunk) {
    result.stats.Merge(slots[chunk].stats);
    candidates.insert(candidates.end(), slots[chunk].edges.begin(),
                      slots[chunk].edges.end());
  }

  result.stats.min_prunes = ego_stats.strategy_prunes;
  result.stats.candidate_pairs = candidates.size();
  result.stats.csf_flushes = 1;
  util::Timer match_timer;
  result.pairs = matching::RunMatcher(options.matcher, candidates);
  result.stats.matching_seconds = match_timer.Seconds();
  result.stats.seconds = timer.Seconds();
  return result;
}

}  // namespace csj
