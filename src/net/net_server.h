#ifndef CSJ_NET_NET_SERVER_H_
#define CSJ_NET_NET_SERVER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "net/wire.h"
#include "service/server.h"
#include "service/topk.h"

namespace csj::net {

/// The networked front end: one epoll reactor thread accepting loopback
/// TCP connections, decoding request frames (wire.h) and feeding them into
/// an existing CsjServer through its callback Submit. Admission control is
/// unchanged — a full queue rejects on the spot and the reactor answers
/// kRejected itself; everything admitted is executed by the CsjServer
/// workers in EDF order and the completing worker encodes the response
/// straight into the connection's outbox (the reactor only ferries bytes).
///
/// Response frames carry the request id of the frame that caused them, and
/// MAY arrive out of submission order (deadline reordering, worker races):
/// correlation is by id, not position.
///
/// A connection whose byte stream breaks framing (bad magic, oversized
/// length prefix, malformed payload — see FrameDecoder) is dropped: a
/// length-prefixed stream cannot be resynchronized. Responses already in
/// flight for that connection are discarded harmlessly.
///
/// Lifetime: `server` is not owned and must outlive this object.
/// Shutdown() stops reading, waits for in-flight requests to drain their
/// responses, then tears the reactor down; worker callbacks hold shared
/// ownership of everything they touch, so a response completing during
/// teardown is safe.
class NetServer {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    /// 0 = ephemeral; the bound port is `port()` after construction.
    uint16_t port = 0;
    /// Server-policy top-k template: per-request wire fields (k, eps,
    /// method, prescreen, cutoff, threshold, deadline) are merged over
    /// it; pool/threading/cache plumbing always comes from here — a
    /// client cannot pick them.
    service::TopKOptions topk_template;
  };

  struct Stats {
    uint64_t connections_accepted = 0;
    uint64_t connections_closed = 0;
    uint64_t frames_decoded = 0;
    uint64_t frames_sent = 0;
    /// Connections dropped for broken framing (including mid-frame EOF).
    uint64_t decode_errors = 0;
    uint64_t bytes_in = 0;
    uint64_t bytes_out = 0;
  };

  /// Binds, listens and starts the reactor; the server is reachable when
  /// the constructor returns. Aborts (CSJ_CHECK) when the address cannot
  /// be bound — the callers are tools and tests, not layers that could
  /// meaningfully recover.
  NetServer(service::CsjServer* server, Options options);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// The bound TCP port (resolves ephemeral requests).
  uint16_t port() const { return port_; }

  Stats GetStats() const;

  /// Stops accepting and reading, waits for admitted requests to flush
  /// their responses (a peer that stopped reading gets a bounded grace
  /// period), closes every connection, joins the reactor. Idempotent;
  /// the destructor calls it.
  void Shutdown();

 private:
  struct Core;
  struct Connection;

  void ReactorLoop();
  bool HandleFrame(const std::shared_ptr<Connection>& connection,
                   DecodedFrame frame);
  void FlushOutbox(const std::shared_ptr<Connection>& connection);
  /// Appends one encoded frame to the connection's outbox unless it is
  /// closed, keeping the core's undelivered-byte count in step; true when
  /// the reactor should be asked to flush.
  static bool EnqueueFrame(Core* core, Connection* connection,
                           const std::vector<uint8_t>& frame);

  service::CsjServer* server_;
  Options options_;
  std::shared_ptr<Core> core_;
  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread reactor_;
  bool shut_down_ = false;
};

}  // namespace csj::net

#endif  // CSJ_NET_NET_SERVER_H_
