#include "net/wire.h"

#include <bit>
#include <cstring>
#include <string>
#include <utility>

#include "util/logging.h"

namespace csj::net {

namespace {

// ---- primitive writers (explicit little-endian, platform-agnostic) ----

void PutU8(uint8_t v, std::vector<uint8_t>* out) { out->push_back(v); }

void PutU16(uint16_t v, std::vector<uint8_t>* out) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

void PutU32(uint32_t v, std::vector<uint8_t>* out) {
  for (int shift = 0; shift < 32; shift += 8) {
    out->push_back(static_cast<uint8_t>(v >> shift));
  }
}

void PutU64(uint64_t v, std::vector<uint8_t>* out) {
  for (int shift = 0; shift < 64; shift += 8) {
    out->push_back(static_cast<uint8_t>(v >> shift));
  }
}

void PutF64(double v, std::vector<uint8_t>* out) {
  PutU64(std::bit_cast<uint64_t>(v), out);
}

/// Bounds-checked big-to-small reader over one payload span. Every Get
/// reports success; a false return means the payload lied about its
/// length (-> kBadPayload).
class Cursor {
 public:
  Cursor(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  bool GetU8(uint8_t* v) {
    if (size_ - pos_ < 1) return false;
    *v = data_[pos_++];
    return true;
  }
  bool GetU16(uint16_t* v) {
    if (size_ - pos_ < 2) return false;
    *v = static_cast<uint16_t>(data_[pos_] |
                               (static_cast<uint16_t>(data_[pos_ + 1]) << 8));
    pos_ += 2;
    return true;
  }
  bool GetU32(uint32_t* v) {
    if (size_ - pos_ < 4) return false;
    uint32_t r = 0;
    for (int i = 0; i < 4; ++i) {
      r |= static_cast<uint32_t>(data_[pos_ + static_cast<size_t>(i)])
           << (8 * i);
    }
    pos_ += 4;
    *v = r;
    return true;
  }
  bool GetU64(uint64_t* v) {
    if (size_ - pos_ < 8) return false;
    uint64_t r = 0;
    for (int i = 0; i < 8; ++i) {
      r |= static_cast<uint64_t>(data_[pos_ + static_cast<size_t>(i)])
           << (8 * i);
    }
    pos_ += 8;
    *v = r;
    return true;
  }
  bool GetF64(double* v) {
    uint64_t bits = 0;
    if (!GetU64(&bits)) return false;
    *v = std::bit_cast<double>(bits);
    return true;
  }
  bool GetBytes(void* dst, size_t n) {
    if (size_ - pos_ < n) return false;
    std::memcpy(dst, data_ + pos_, n);
    pos_ += n;
    return true;
  }
  size_t remaining() const { return size_ - pos_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

void PutFrameHeader(FrameType type, uint32_t request_id,
                    size_t payload_bytes, std::vector<uint8_t>* out) {
  CSJ_CHECK_LE(payload_bytes, kMaxPayloadBytes);
  PutU32(kFrameMagic, out);
  PutU8(kWireVersion, out);
  PutU8(static_cast<uint8_t>(type), out);
  PutU16(0, out);  // reserved
  PutU32(request_id, out);
  PutU32(static_cast<uint32_t>(payload_bytes), out);
}

constexpr uint8_t kReqFlagPrescreen = 1u << 0;
constexpr uint8_t kReqFlagCutoff = 1u << 1;
constexpr uint8_t kReqFlagHasCommunity = 1u << 2;
constexpr uint8_t kRespFlagCacheHit = 1u << 0;
constexpr uint8_t kRespFlagDeadlineExpired = 1u << 1;

bool ValidMethod(uint16_t method) {
  return method <= static_cast<uint16_t>(Method::kExGridHash);
}

bool ValidKind(uint8_t kind) {
  return kind <= static_cast<uint8_t>(service::RequestKind::kRemove);
}

bool ValidStatus(uint8_t status) {
  return status <= static_cast<uint8_t>(service::ServeStatus::kNotFound);
}

bool DecodeRequestPayload(Cursor cursor, WireRequest* request) {
  uint8_t kind = 0;
  uint8_t flags = 0;
  uint16_t method = 0;
  if (!cursor.GetU8(&kind) || !cursor.GetU8(&flags) ||
      !cursor.GetU16(&method) || !cursor.GetU32(&request->k) ||
      !cursor.GetU32(&request->eps) || !cursor.GetU64(&request->id) ||
      !cursor.GetF64(&request->deadline_seconds) ||
      !cursor.GetF64(&request->prescreen_threshold)) {
    return false;
  }
  if (!ValidKind(kind) || !ValidMethod(method) || (flags & ~0x07u) != 0) {
    return false;
  }
  request->kind = static_cast<service::RequestKind>(kind);
  request->method = static_cast<Method>(method);
  // Bound k here, where the frame is still cheap to refuse: entries cost
  // 24 response bytes each, so an unbounded k would let a client force
  // the RESPONSE over kMaxPayloadBytes after the query already ran.
  if (request->kind == service::RequestKind::kTopK &&
      request->k > kMaxTopKEntries) {
    return false;
  }
  request->prescreen = (flags & kReqFlagPrescreen) != 0;
  request->use_bound_cutoff = (flags & kReqFlagCutoff) != 0;
  if ((flags & kReqFlagHasCommunity) == 0) {
    request->community = nullptr;
    return cursor.remaining() == 0;
  }
  uint32_t d = 0;
  uint32_t users = 0;
  uint32_t name_bytes = 0;
  if (!cursor.GetU32(&d) || !cursor.GetU32(&users) ||
      !cursor.GetU32(&name_bytes)) {
    return false;
  }
  if (d == 0) return false;
  // The name can never exceed what is actually buffered; checking BEFORE
  // the allocation keeps a hostile name_bytes=0xFFFFFFFF from forcing a
  // 4 GiB zero-fill that no later bounds check could take back.
  if (name_bytes > cursor.remaining()) return false;
  std::string name(name_bytes, '\0');
  if (name_bytes > 0 && !cursor.GetBytes(name.data(), name_bytes)) {
    return false;
  }
  // The counters must account for EXACTLY the rest of the payload; the
  // multiplication is checked against the buffered size first so a
  // hostile (users, d) pair cannot overflow into a giant allocation.
  const size_t counters = static_cast<size_t>(users) * d;
  if (counters != cursor.remaining() / sizeof(Count) ||
      cursor.remaining() % sizeof(Count) != 0) {
    return false;
  }
  std::vector<Count> flat(counters);
  if constexpr (std::endian::native == std::endian::little) {
    if (counters > 0 &&
        !cursor.GetBytes(flat.data(), counters * sizeof(Count))) {
      return false;
    }
  } else {
    for (Count& c : flat) {
      if (!cursor.GetU32(&c)) return false;
    }
  }
  request->community = std::make_shared<const Community>(
      d, std::move(flat), std::move(name));
  return true;
}

bool DecodeResponsePayload(Cursor cursor, WireResponse* response) {
  uint8_t status = 0;
  uint8_t flags = 0;
  uint16_t reserved = 0;
  uint32_t entry_count = 0;
  if (!cursor.GetU8(&status) || !cursor.GetU8(&flags) ||
      !cursor.GetU16(&reserved) || !cursor.GetU32(&entry_count) ||
      !cursor.GetU64(&response->version) ||
      !cursor.GetU64(&response->state_version) ||
      !cursor.GetU64(&response->sequence) ||
      !cursor.GetF64(&response->queue_seconds) ||
      !cursor.GetF64(&response->total_seconds)) {
    return false;
  }
  if (!ValidStatus(status) || (flags & ~0x03u) != 0 || reserved != 0) {
    return false;
  }
  response->status = static_cast<service::ServeStatus>(status);
  response->cache_hit = (flags & kRespFlagCacheHit) != 0;
  response->deadline_expired = (flags & kRespFlagDeadlineExpired) != 0;
  // Entries claim 24 bytes each and the trailing stats 24 more; check
  // the claimed count against what is actually buffered before sizing
  // the vector.
  if (cursor.remaining() < static_cast<size_t>(entry_count) * 24 + 24) {
    return false;
  }
  response->entries.resize(entry_count);
  for (service::TopKEntry& entry : response->entries) {
    uint64_t bits = 0;
    if (!cursor.GetU64(&entry.id) || !cursor.GetU64(&entry.version) ||
        !cursor.GetU64(&bits)) {
      return false;
    }
    entry.similarity = std::bit_cast<double>(bits);
  }
  if (!cursor.GetU32(&response->catalog_entries) ||
      !cursor.GetU32(&response->refined) ||
      !cursor.GetU32(&response->bound_skipped) ||
      !cursor.GetU32(&response->prescreen_probed) ||
      !cursor.GetU32(&response->prescreen_skipped) ||
      !cursor.GetU32(&response->fallback)) {
    return false;
  }
  return cursor.remaining() == 0;
}

}  // namespace

const char* WireStatusName(WireStatus status) {
  switch (status) {
    case WireStatus::kOk: return "ok";
    case WireStatus::kNeedMore: return "need_more";
    case WireStatus::kBadMagic: return "bad_magic";
    case WireStatus::kBadVersion: return "bad_version";
    case WireStatus::kBadFrameType: return "bad_frame_type";
    case WireStatus::kOversized: return "oversized";
    case WireStatus::kBadPayload: return "bad_payload";
    case WireStatus::kTruncated: return "truncated";
  }
  return "unknown";
}

void EncodeRequestFrame(uint32_t request_id, const WireRequest& request,
                        std::vector<uint8_t>* out) {
  std::vector<uint8_t> payload;
  const bool has_community = request.community != nullptr;
  uint8_t flags = 0;
  if (request.prescreen) flags |= kReqFlagPrescreen;
  if (request.use_bound_cutoff) flags |= kReqFlagCutoff;
  if (has_community) flags |= kReqFlagHasCommunity;
  PutU8(static_cast<uint8_t>(request.kind), &payload);
  PutU8(flags, &payload);
  PutU16(static_cast<uint16_t>(request.method), &payload);
  PutU32(request.k, &payload);
  PutU32(request.eps, &payload);
  PutU64(request.id, &payload);
  PutF64(request.deadline_seconds, &payload);
  PutF64(request.prescreen_threshold, &payload);
  if (has_community) {
    const Community& community = *request.community;
    PutU32(community.d(), &payload);
    PutU32(community.size(), &payload);
    PutU32(static_cast<uint32_t>(community.name().size()), &payload);
    payload.insert(payload.end(), community.name().begin(),
                   community.name().end());
    payload.reserve(payload.size() +
                    community.flat().size() * sizeof(Count));
    if constexpr (std::endian::native == std::endian::little) {
      const auto* raw =
          reinterpret_cast<const uint8_t*>(community.flat().data());
      payload.insert(payload.end(), raw,
                     raw + community.flat().size() * sizeof(Count));
    } else {
      for (const Count c : community.flat()) PutU32(c, &payload);
    }
  }
  PutFrameHeader(FrameType::kRequest, request_id, payload.size(), out);
  out->insert(out->end(), payload.begin(), payload.end());
}

void EncodeResponseFrame(uint32_t request_id, const WireResponse& response,
                         std::vector<uint8_t>* out) {
  std::vector<uint8_t> payload;
  uint8_t flags = 0;
  if (response.cache_hit) flags |= kRespFlagCacheHit;
  if (response.deadline_expired) flags |= kRespFlagDeadlineExpired;
  PutU8(static_cast<uint8_t>(response.status), &payload);
  PutU8(flags, &payload);
  PutU16(0, &payload);
  PutU32(static_cast<uint32_t>(response.entries.size()), &payload);
  PutU64(response.version, &payload);
  PutU64(response.state_version, &payload);
  PutU64(response.sequence, &payload);
  PutF64(response.queue_seconds, &payload);
  PutF64(response.total_seconds, &payload);
  for (const service::TopKEntry& entry : response.entries) {
    PutU64(entry.id, &payload);
    PutU64(entry.version, &payload);
    PutU64(std::bit_cast<uint64_t>(entry.similarity), &payload);
  }
  PutU32(response.catalog_entries, &payload);
  PutU32(response.refined, &payload);
  PutU32(response.bound_skipped, &payload);
  PutU32(response.prescreen_probed, &payload);
  PutU32(response.prescreen_skipped, &payload);
  PutU32(response.fallback, &payload);
  PutFrameHeader(FrameType::kResponse, request_id, payload.size(), out);
  out->insert(out->end(), payload.begin(), payload.end());
}

WireResponse ToWireResponse(const service::ServeResponse& response) {
  WireResponse wire;
  wire.status = response.status;
  wire.cache_hit = response.cache_hit;
  wire.deadline_expired = response.topk.deadline_expired;
  wire.version = response.version;
  wire.state_version = response.state_version;
  wire.sequence = response.sequence;
  wire.queue_seconds = response.queue_seconds;
  wire.total_seconds = response.total_seconds;
  wire.entries = response.topk.entries;
  wire.catalog_entries = response.topk.stats.catalog_entries;
  wire.refined = response.topk.stats.refined;
  wire.bound_skipped = response.topk.stats.bound_skipped;
  wire.prescreen_probed = response.topk.stats.prescreen_probed;
  wire.prescreen_skipped = response.topk.stats.prescreen_skipped;
  wire.fallback = response.topk.stats.fallback;
  return wire;
}

void FrameDecoder::Feed(const uint8_t* data, size_t size) {
  if (error_ != WireStatus::kOk) return;  // poisoned: drop everything
  // Compact lazily: only when the decoded prefix dominates the buffer.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + size);
}

WireStatus FrameDecoder::Next(DecodedFrame* frame) {
  if (error_ != WireStatus::kOk) return error_;
  const size_t available = buffer_.size() - consumed_;
  if (available < kFrameHeaderBytes) return WireStatus::kNeedMore;
  Cursor header(buffer_.data() + consumed_, kFrameHeaderBytes);
  uint32_t magic = 0;
  uint8_t version = 0;
  uint8_t type = 0;
  uint16_t reserved = 0;
  uint32_t request_id = 0;
  uint32_t payload_bytes = 0;
  CSJ_CHECK(header.GetU32(&magic) && header.GetU8(&version) &&
            header.GetU8(&type) && header.GetU16(&reserved) &&
            header.GetU32(&request_id) && header.GetU32(&payload_bytes));
  if (magic != kFrameMagic) return error_ = WireStatus::kBadMagic;
  if (version != kWireVersion) return error_ = WireStatus::kBadVersion;
  if (type != static_cast<uint8_t>(FrameType::kRequest) &&
      type != static_cast<uint8_t>(FrameType::kResponse)) {
    return error_ = WireStatus::kBadFrameType;
  }
  if (reserved != 0) return error_ = WireStatus::kBadPayload;
  if (payload_bytes > kMaxPayloadBytes) {
    // An oversized length prefix is rejected BEFORE buffering the body:
    // a hostile peer cannot make the server allocate 4 GiB by writing 16
    // bytes.
    return error_ = WireStatus::kOversized;
  }
  if (available < kFrameHeaderBytes + payload_bytes) {
    return WireStatus::kNeedMore;
  }
  Cursor payload(buffer_.data() + consumed_ + kFrameHeaderBytes,
                 payload_bytes);
  frame->type = static_cast<FrameType>(type);
  frame->request_id = request_id;
  bool ok = false;
  if (frame->type == FrameType::kRequest) {
    ok = DecodeRequestPayload(payload, &frame->request);
  } else {
    ok = DecodeResponsePayload(payload, &frame->response);
  }
  if (!ok) return error_ = WireStatus::kBadPayload;
  consumed_ += kFrameHeaderBytes + payload_bytes;
  ++frames_decoded_;
  return WireStatus::kOk;
}

WireStatus FrameDecoder::Finish() {
  if (error_ != WireStatus::kOk) return error_;
  if (buffer_.size() != consumed_) return error_ = WireStatus::kTruncated;
  return WireStatus::kOk;
}

}  // namespace csj::net
