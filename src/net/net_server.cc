#include "net/net_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace csj::net {

/// One accepted TCP connection. The reactor thread owns the fd and the
/// decoder; the outbox is shared with worker callbacks under `mu`.
struct NetServer::Connection {
  int fd = -1;
  FrameDecoder decoder;  ///< reactor thread only

  std::mutex mu;
  bool closed = false;            ///< guarded by mu
  std::vector<uint8_t> outbox;    ///< guarded by mu
  size_t out_pos = 0;             ///< guarded by mu

  bool want_write = false;  ///< reactor thread only: EPOLLOUT armed
};

/// Reactor state that worker callbacks touch. Held by shared_ptr from the
/// NetServer AND from every in-flight completion callback, so a response
/// finishing during (or even after) Shutdown still lands on live memory.
struct NetServer::Core {
  std::atomic<bool> accepting{true};
  std::atomic<bool> running{true};
  int wake_fd = -1;

  std::mutex pending_mu;
  std::vector<std::shared_ptr<Connection>> pending;  ///< outboxes to flush

  std::atomic<uint64_t> in_flight{0};  ///< submitted, response not enqueued
  /// Undelivered response bytes across every connection outbox. Shutdown
  /// drains this to zero (bounded grace) so admitted responses are not
  /// silently dropped when the reactor exits.
  std::atomic<uint64_t> outbox_bytes{0};
  /// Completed reactor-loop iterations. Shutdown uses it as a handshake:
  /// once two more passes finish after `accepting` flips, no read that
  /// began before the flip can still be admitting requests.
  std::atomic<uint64_t> reactor_passes{0};

  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> connections_closed{0};
  std::atomic<uint64_t> frames_decoded{0};
  std::atomic<uint64_t> frames_sent{0};
  std::atomic<uint64_t> decode_errors{0};
  std::atomic<uint64_t> bytes_in{0};
  std::atomic<uint64_t> bytes_out{0};

  ~Core() {
    if (wake_fd >= 0) ::close(wake_fd);
  }

  void Wake() const {
    const uint64_t one = 1;
    // The eventfd is a counter: concurrent wakes coalesce, and the write
    // cannot block short of 2^64-1 unconsumed wakes.
    [[maybe_unused]] const ssize_t n =
        ::write(wake_fd, &one, sizeof(one));
  }
};

namespace {

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  CSJ_CHECK(flags >= 0);
  CSJ_CHECK(::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0);
}

void SetNoDelay(int fd) {
  // Request/response traffic: without TCP_NODELAY every small frame can
  // eat a Nagle delay, which would swamp sub-millisecond cache-hit
  // latencies.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

bool NetServer::EnqueueFrame(Core* core, Connection* connection,
                             const std::vector<uint8_t>& frame) {
  std::lock_guard lock(connection->mu);
  if (connection->closed) return false;
  connection->outbox.insert(connection->outbox.end(), frame.begin(),
                            frame.end());
  core->outbox_bytes.fetch_add(frame.size(), std::memory_order_relaxed);
  return true;
}

NetServer::NetServer(service::CsjServer* server, Options options)
    : server_(server), options_(std::move(options)) {
  CSJ_CHECK(server_ != nullptr);
  core_ = std::make_shared<Core>();
  core_->wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  CSJ_CHECK(core_->wake_fd >= 0);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  CSJ_CHECK(listen_fd_ >= 0);
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  CSJ_CHECK(::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) ==
            1)
      << "bad listen host " << options_.host;
  CSJ_CHECK(::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)) == 0)
      << "cannot bind " << options_.host << ":" << options_.port;
  CSJ_CHECK(::listen(listen_fd_, 128) == 0);

  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  CSJ_CHECK(::getsockname(listen_fd_,
                          reinterpret_cast<sockaddr*>(&bound),
                          &bound_len) == 0);
  port_ = ntohs(bound.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  CSJ_CHECK(epoll_fd_ >= 0);
  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  CSJ_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) == 0);
  ev.data.fd = core_->wake_fd;
  CSJ_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, core_->wake_fd, &ev) ==
            0);

  reactor_ = std::thread([this] { ReactorLoop(); });
}

NetServer::~NetServer() { Shutdown(); }

void NetServer::Shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  // Phase 1: stop taking new work (accepts and reads) but keep the
  // reactor flushing, so every admitted request still delivers its
  // response before the socket dies under it.
  core_->accepting.store(false, std::memory_order_release);
  core_->Wake();
  // Handshake: wait for two further complete reactor passes. The pass in
  // progress when `accepting` flipped may still be reading frames (and
  // bumping in_flight); the NEXT full pass provably started after the
  // flip and admitted nothing, so after it finishes the in_flight==0
  // observation below cannot be raced by buffered reads.
  const uint64_t pass =
      core_->reactor_passes.load(std::memory_order_acquire);
  while (core_->reactor_passes.load(std::memory_order_acquire) <
         pass + 2) {
    core_->Wake();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  while (core_->in_flight.load(std::memory_order_acquire) > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Every admitted response now sits in some outbox; keep the reactor
  // flushing until the outboxes are empty. A peer that stopped reading
  // (send stuck on EAGAIN) gets a bounded grace period rather than an
  // unbounded hang — only then may its bytes be dropped.
  const auto flush_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(1);
  while (core_->outbox_bytes.load(std::memory_order_acquire) > 0 &&
         std::chrono::steady_clock::now() < flush_deadline) {
    core_->Wake();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Phase 2: stop the reactor and tear the fds down.
  core_->running.store(false, std::memory_order_release);
  core_->Wake();
  if (reactor_.joinable()) reactor_.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  listen_fd_ = -1;
  epoll_fd_ = -1;
}

NetServer::Stats NetServer::GetStats() const {
  Stats stats;
  stats.connections_accepted =
      core_->connections_accepted.load(std::memory_order_relaxed);
  stats.connections_closed =
      core_->connections_closed.load(std::memory_order_relaxed);
  stats.frames_decoded =
      core_->frames_decoded.load(std::memory_order_relaxed);
  stats.frames_sent = core_->frames_sent.load(std::memory_order_relaxed);
  stats.decode_errors =
      core_->decode_errors.load(std::memory_order_relaxed);
  stats.bytes_in = core_->bytes_in.load(std::memory_order_relaxed);
  stats.bytes_out = core_->bytes_out.load(std::memory_order_relaxed);
  return stats;
}

void NetServer::ReactorLoop() {
  std::unordered_map<int, std::shared_ptr<Connection>> connections;
  // Connections torn down during the CURRENT event batch. The fd is only
  // ::close()d after the batch: closing mid-batch would let an accept
  // later in the same batch reuse the fd number, and a stale queued
  // event (say an EPOLLHUP for the old socket) would then resolve to —
  // and spuriously kill — the brand-new connection.
  std::vector<std::shared_ptr<Connection>> dead;

  const auto close_connection =
      [&](const std::shared_ptr<Connection>& connection) {
        {
          std::lock_guard lock(connection->mu);
          if (connection->closed) return;
          connection->closed = true;
          core_->outbox_bytes.fetch_sub(
              connection->outbox.size() - connection->out_pos,
              std::memory_order_relaxed);
        }
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, connection->fd, nullptr);
        dead.push_back(connection);
        core_->connections_closed.fetch_add(1, std::memory_order_relaxed);
      };

  const auto flush =
      [&](const std::shared_ptr<Connection>& connection) {
        bool drained = true;
        bool broken = false;
        {
          std::lock_guard lock(connection->mu);
          if (connection->closed) return;
          while (connection->out_pos < connection->outbox.size()) {
            const size_t left =
                connection->outbox.size() - connection->out_pos;
            const ssize_t n = ::send(
                connection->fd,
                connection->outbox.data() + connection->out_pos, left,
                MSG_NOSIGNAL);
            if (n > 0) {
              connection->out_pos += static_cast<size_t>(n);
              core_->bytes_out.fetch_add(static_cast<uint64_t>(n),
                                         std::memory_order_relaxed);
              core_->outbox_bytes.fetch_sub(static_cast<uint64_t>(n),
                                            std::memory_order_relaxed);
              continue;
            }
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
              drained = false;
              break;
            }
            broken = true;  // peer gone; responses are undeliverable
            break;
          }
          if (connection->out_pos == connection->outbox.size()) {
            connection->outbox.clear();
            connection->out_pos = 0;
          }
        }
        if (broken) {
          close_connection(connection);
          return;
        }
        if (drained == connection->want_write) {
          // Arm EPOLLOUT only while bytes are stuck; disarm as soon as
          // the outbox drains so an idle connection costs no wakeups.
          connection->want_write = !drained;
          epoll_event ev;
          std::memset(&ev, 0, sizeof(ev));
          ev.events =
              connection->want_write ? (EPOLLIN | EPOLLOUT) : EPOLLIN;
          ev.data.fd = connection->fd;
          ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, connection->fd, &ev);
        }
      };

  const auto read_ready =
      [&](const std::shared_ptr<Connection>& connection) {
        uint8_t buffer[64 * 1024];
        while (true) {
          const ssize_t n =
              ::recv(connection->fd, buffer, sizeof(buffer), 0);
          if (n > 0) {
            core_->bytes_in.fetch_add(static_cast<uint64_t>(n),
                                      std::memory_order_relaxed);
            connection->decoder.Feed(buffer, static_cast<size_t>(n));
            while (true) {
              DecodedFrame frame;
              const WireStatus status = connection->decoder.Next(&frame);
              if (status == WireStatus::kNeedMore) break;
              if (status != WireStatus::kOk ||
                  !HandleFrame(connection, std::move(frame))) {
                core_->decode_errors.fetch_add(1,
                                              std::memory_order_relaxed);
                close_connection(connection);
                return;
              }
              core_->frames_decoded.fetch_add(1,
                                              std::memory_order_relaxed);
            }
            continue;
          }
          if (n == 0) {  // EOF
            if (connection->decoder.Finish() != WireStatus::kOk) {
              core_->decode_errors.fetch_add(1, std::memory_order_relaxed);
            }
            close_connection(connection);
            return;
          }
          if (errno == EAGAIN || errno == EWOULDBLOCK) return;
          close_connection(connection);
          return;
        }
      };

  epoll_event events[64];
  while (core_->running.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events, 64, 100);
    if (n < 0) {
      CSJ_CHECK(errno == EINTR);
      continue;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == core_->wake_fd) {
        uint64_t drained = 0;
        while (::read(core_->wake_fd, &drained, sizeof(drained)) > 0) {
        }
        std::vector<std::shared_ptr<Connection>> pending;
        {
          std::lock_guard lock(core_->pending_mu);
          pending.swap(core_->pending);
        }
        for (const auto& connection : pending) flush(connection);
        continue;
      }
      if (fd == listen_fd_) {
        while (core_->accepting.load(std::memory_order_acquire)) {
          const int conn_fd = ::accept(listen_fd_, nullptr, nullptr);
          if (conn_fd < 0) break;  // EAGAIN or transient failure
          SetNonBlocking(conn_fd);
          SetNoDelay(conn_fd);
          auto connection = std::make_shared<Connection>();
          connection->fd = conn_fd;
          epoll_event ev;
          std::memset(&ev, 0, sizeof(ev));
          ev.events = EPOLLIN;
          ev.data.fd = conn_fd;
          CSJ_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, conn_fd, &ev) ==
                    0);
          connections[conn_fd] = std::move(connection);
          core_->connections_accepted.fetch_add(
              1, std::memory_order_relaxed);
        }
        continue;
      }
      const auto it = connections.find(fd);
      if (it == connections.end()) continue;
      const std::shared_ptr<Connection> connection = it->second;
      {
        // Dying this batch (fd not yet closed, see `dead`): stale queued
        // events for it are ignored.
        std::lock_guard lock(connection->mu);
        if (connection->closed) continue;
      }
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        close_connection(connection);
        continue;
      }
      if ((events[i].events & EPOLLOUT) != 0) flush(connection);
      if ((events[i].events & EPOLLIN) != 0 &&
          core_->accepting.load(std::memory_order_acquire)) {
        read_ready(connection);
      }
    }
    // End of batch: now the fd numbers can be recycled safely.
    for (const std::shared_ptr<Connection>& connection : dead) {
      ::close(connection->fd);
      connections.erase(connection->fd);
    }
    dead.clear();
    core_->reactor_passes.fetch_add(1, std::memory_order_release);
  }

  for (auto& [fd, connection] : connections) {
    {
      std::lock_guard lock(connection->mu);
      connection->closed = true;
      core_->outbox_bytes.fetch_sub(
          connection->outbox.size() - connection->out_pos,
          std::memory_order_relaxed);
    }
    ::close(fd);
    core_->connections_closed.fetch_add(1, std::memory_order_relaxed);
  }
  connections.clear();
}

bool NetServer::HandleFrame(const std::shared_ptr<Connection>& connection,
                            DecodedFrame frame) {
  if (frame.type != FrameType::kRequest) return false;  // protocol abuse
  WireRequest& wire = frame.request;
  const bool needs_community =
      wire.kind != service::RequestKind::kRemove;
  if (needs_community && wire.community == nullptr) return false;

  service::ServeRequest request;
  request.kind = wire.kind;
  request.id = wire.id;
  request.community = std::move(wire.community);
  request.deadline_seconds = wire.deadline_seconds;
  request.topk = options_.topk_template;
  request.topk.k = wire.k;
  request.topk.method = wire.method;
  request.topk.join.eps = wire.eps;
  request.topk.prescreen = wire.prescreen;
  request.topk.use_bound_cutoff = wire.use_bound_cutoff;
  request.topk.prescreen_threshold = wire.prescreen_threshold;

  const uint32_t request_id = frame.request_id;
  const std::shared_ptr<Core> core = core_;
  core->in_flight.fetch_add(1, std::memory_order_acq_rel);
  const bool admitted = server_->Submit(
      std::move(request),
      [core, connection, request_id](service::ServeResponse response) {
        std::vector<uint8_t> encoded;
        EncodeResponseFrame(request_id, ToWireResponse(response),
                            &encoded);
        if (EnqueueFrame(core.get(), connection.get(), encoded)) {
          core->frames_sent.fetch_add(1, std::memory_order_relaxed);
          {
            std::lock_guard lock(core->pending_mu);
            core->pending.push_back(connection);
          }
          core->Wake();
        }
        core->in_flight.fetch_sub(1, std::memory_order_acq_rel);
      });
  if (!admitted) {
    // Admission control verdicts do not enter the queue; the reactor
    // answers on the spot so the client sees kRejected instead of a
    // hang.
    core->in_flight.fetch_sub(1, std::memory_order_acq_rel);
    WireResponse rejected;
    rejected.status = service::ServeStatus::kRejected;
    std::vector<uint8_t> encoded;
    EncodeResponseFrame(request_id, rejected, &encoded);
    if (EnqueueFrame(core.get(), connection.get(), encoded)) {
      core->frames_sent.fetch_add(1, std::memory_order_relaxed);
      FlushOutbox(connection);
    }
  }
  return true;
}

void NetServer::FlushOutbox(const std::shared_ptr<Connection>& connection) {
  // Reactor-thread path for immediate sends (rejections): queue through
  // the same pending list the wake handler drains, so flush logic lives
  // in exactly one place.
  {
    std::lock_guard lock(core_->pending_mu);
    core_->pending.push_back(connection);
  }
  core_->Wake();
}

}  // namespace csj::net
