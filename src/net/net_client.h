#ifndef CSJ_NET_NET_CLIENT_H_
#define CSJ_NET_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "net/wire.h"

namespace csj::net {

/// A blocking request/response client for one NetServer connection. One
/// request is in flight at a time (Call sends, then reads until the
/// matching response id arrives); drive concurrency by giving each client
/// thread its own NetClient, exactly like the csj_serve closed loop does.
/// Not thread-safe.
class NetClient {
 public:
  /// Connects (blocking). Returns null when the server is unreachable.
  static std::unique_ptr<NetClient> Connect(const std::string& host,
                                            uint16_t port);

  ~NetClient();

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  /// Sends one request frame and blocks for its response. Returns false
  /// on any transport or framing failure — the connection is dead then
  /// (length-prefixed streams cannot resync) and the client must be
  /// discarded.
  bool Call(const WireRequest& request, WireResponse* response);

  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t bytes_received() const { return bytes_received_; }

 private:
  explicit NetClient(int fd) : fd_(fd) {}

  int fd_;
  FrameDecoder decoder_;
  uint32_t next_request_id_ = 1;
  uint64_t bytes_sent_ = 0;
  uint64_t bytes_received_ = 0;
};

}  // namespace csj::net

#endif  // CSJ_NET_NET_CLIENT_H_
