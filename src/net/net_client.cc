#include "net/net_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

namespace csj::net {

std::unique_ptr<NetClient> NetClient::Connect(const std::string& host,
                                              uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return nullptr;
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return nullptr;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<NetClient>(new NetClient(fd));
}

NetClient::~NetClient() {
  if (fd_ >= 0) ::close(fd_);
}

bool NetClient::Call(const WireRequest& request, WireResponse* response) {
  if (fd_ < 0) return false;
  const uint32_t request_id = next_request_id_++;
  std::vector<uint8_t> frame;
  EncodeRequestFrame(request_id, request, &frame);
  size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = ::send(fd_, frame.data() + sent, frame.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
    bytes_sent_ += static_cast<uint64_t>(n);
  }

  uint8_t buffer[64 * 1024];
  while (true) {
    DecodedFrame decoded;
    const WireStatus status = decoder_.Next(&decoded);
    if (status == WireStatus::kOk) {
      // One request in flight: the only legal frame is OUR response.
      if (decoded.type != FrameType::kResponse ||
          decoded.request_id != request_id) {
        return false;
      }
      *response = std::move(decoded.response);
      return true;
    }
    if (status != WireStatus::kNeedMore) return false;
    const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;  // EOF or error mid-response
    }
    bytes_received_ += static_cast<uint64_t>(n);
    decoder_.Feed(buffer, static_cast<size_t>(n));
  }
}

}  // namespace csj::net
