#ifndef CSJ_NET_WIRE_H_
#define CSJ_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/community.h"
#include "core/method.h"
#include "core/types.h"
#include "service/server.h"

namespace csj::net {

/// The csjoin binary wire protocol, version 1.
///
/// Every message is one length-prefixed frame (all integers little-
/// endian, doubles as IEEE-754 bit patterns):
///
///   offset  size  field
///   0       4     magic = 0x314A5343 ("CSJ1" on a little-endian wire)
///   4       1     protocol version = 1
///   5       1     frame type (1 = request, 2 = response)
///   6       2     reserved, must be 0
///   8       4     request id (correlation: echoed in the response)
///   12      4     payload length in bytes (<= kMaxPayloadBytes)
///   16      ...   payload
///
/// Request payload:
///   u8  kind (0 top-k, 1 upsert, 2 remove)
///   u8  flags: bit0 prescreen, bit1 use_bound_cutoff, bit2 has community
///   u16 method (Method enum index; must name an exact method for top-k)
///   u32 k (top-k: must be <= kMaxTopKEntries, see below)
///   u32 eps
///   u64 id (upsert/remove target)
///   f64 deadline_seconds (0 = none)
///   f64 prescreen_threshold
///   if has-community: u32 d, u32 users, u32 name bytes, name,
///                     users*d u32 counters (row-major)
///
/// Response payload:
///   u8  status (ServeStatus)
///   u8  flags: bit0 cache_hit, bit1 deadline_expired (top-k partial)
///   u16 reserved = 0
///   u32 entry count
///   u64 upsert version
///   u64 state_version (catalog mutation-clock tag; 0 = unstable)
///   u64 sequence (server execution order)
///   f64 queue_seconds, f64 total_seconds
///   entries: { u64 id, u64 version, u64 similarity bit pattern } each —
///     the similarity crosses the wire as raw double BITS, so the
///     "byte-identical ranking" contract survives serialization exactly
///   stats: u32 catalog_entries, u32 refined, u32 bound_skipped,
///          u32 prescreen_probed, u32 prescreen_skipped, u32 fallback
///
/// A decoder that sees a bad magic/version/type, a payload length above
/// kMaxPayloadBytes, or a malformed payload is POISONED: the stream has
/// lost framing and the connection must be dropped (there is no way to
/// resynchronize a length-prefixed stream). Truncation (EOF mid-frame) is
/// reported by Finish().
inline constexpr uint32_t kFrameMagic = 0x314A5343;  // "CSJ1"
inline constexpr uint8_t kWireVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 16;
inline constexpr size_t kMaxPayloadBytes = size_t{64} << 20;  // 64 MiB

/// Largest k a top-k request frame may carry. A response holds 48 fixed
/// payload bytes + 24 per entry + 24 stats bytes, and the entry count is
/// min(k, catalog size) — so k must be bounded at DECODE time or a remote
/// request with a huge k against a large catalog would make the response
/// exceed kMaxPayloadBytes while ENCODING, after the work is already
/// done. A request above this bound is kBadPayload.
inline constexpr uint32_t kMaxTopKEntries =
    static_cast<uint32_t>((kMaxPayloadBytes - 48 - 24) / 24);

enum class FrameType : uint8_t {
  kRequest = 1,
  kResponse = 2,
};

enum class WireStatus : uint8_t {
  kOk,             ///< a frame was produced
  kNeedMore,       ///< no complete frame buffered yet
  kBadMagic,       ///< stream is not csjoin traffic
  kBadVersion,     ///< protocol version mismatch
  kBadFrameType,   ///< neither request nor response
  kOversized,      ///< length prefix exceeds kMaxPayloadBytes
  kBadPayload,     ///< payload malformed (garbage enum, length mismatch)
  kTruncated,      ///< EOF landed mid-frame
};

const char* WireStatusName(WireStatus status);

/// The request fields that cross the wire. The server merges them over
/// its own TopKOptions template (cache pointers, pool, query_threads stay
/// server policy — a client cannot pick them).
struct WireRequest {
  service::RequestKind kind = service::RequestKind::kTopK;
  uint64_t id = 0;
  uint32_t k = 10;
  Epsilon eps = 1;
  Method method = Method::kExMinMax;
  bool prescreen = false;
  bool use_bound_cutoff = true;
  double prescreen_threshold = 0.10;
  double deadline_seconds = 0.0;
  /// Null when the request carries no community (kRemove).
  std::shared_ptr<const Community> community;
};

/// The response fields that cross the wire (ServeResponse minus the
/// server-local stats that have no client meaning).
struct WireResponse {
  service::ServeStatus status = service::ServeStatus::kOk;
  bool cache_hit = false;
  bool deadline_expired = false;
  uint64_t version = 0;
  uint64_t state_version = 0;
  uint64_t sequence = 0;
  double queue_seconds = 0.0;
  double total_seconds = 0.0;
  std::vector<service::TopKEntry> entries;
  uint32_t catalog_entries = 0;
  uint32_t refined = 0;
  uint32_t bound_skipped = 0;
  uint32_t prescreen_probed = 0;
  uint32_t prescreen_skipped = 0;
  uint32_t fallback = 0;
};

/// One decoded frame; exactly one of request/response is meaningful,
/// selected by `type`.
struct DecodedFrame {
  FrameType type = FrameType::kRequest;
  uint32_t request_id = 0;
  WireRequest request;
  WireResponse response;
};

/// Appends one request frame to `out` (which may already hold frames —
/// encoders never clear).
void EncodeRequestFrame(uint32_t request_id, const WireRequest& request,
                        std::vector<uint8_t>* out);

/// Appends one response frame to `out`.
void EncodeResponseFrame(uint32_t request_id, const WireResponse& response,
                         std::vector<uint8_t>* out);

/// Builds the wire view of a ServeResponse.
WireResponse ToWireResponse(const service::ServeResponse& response);

/// Incremental frame decoder for one byte stream (one per connection).
/// Feed() buffers raw bytes; Next() yields frames until kNeedMore. Any
/// error status is STICKY — the connection owning this decoder must be
/// closed. Finish() reports whether EOF at this point is clean.
class FrameDecoder {
 public:
  void Feed(const uint8_t* data, size_t size);

  /// Decodes the next buffered frame into `*frame`. Returns kOk per
  /// frame, kNeedMore when the buffer holds no complete frame, or the
  /// sticky error that poisoned the stream.
  WireStatus Next(DecodedFrame* frame);

  /// EOF check: kOk when no partial frame is buffered (a clean close),
  /// kTruncated (sticky) when the peer died mid-frame, or the earlier
  /// sticky error.
  WireStatus Finish();

  /// Total frames successfully decoded (connection stats).
  uint64_t frames_decoded() const { return frames_decoded_; }

 private:
  std::vector<uint8_t> buffer_;
  size_t consumed_ = 0;  ///< bytes of buffer_ already decoded
  WireStatus error_ = WireStatus::kOk;  ///< sticky once != kOk
  uint64_t frames_decoded_ = 0;
};

}  // namespace csj::net

#endif  // CSJ_NET_WIRE_H_
