#ifndef CSJ_DATA_STATS_H_
#define CSJ_DATA_STATS_H_

#include <cstdint>
#include <vector>

#include "core/community.h"
#include "data/categories.h"
#include "util/rng.h"

namespace csj::data {

/// Per-category aggregate of a generated population, ordered like Table 1
/// (descending by total likes).
struct CategoryTotal {
  Category category;
  uint64_t total_likes;
};

/// Sums each dimension over every user of `population` and returns the
/// categories ranked descending by total — the regenerated Table 1 column.
std::vector<CategoryTotal> RankCategories(const Community& population);

/// Generates a `users`-strong population of the VK family: each user's
/// home category is drawn with probability proportional to the paper's
/// Table 1 VK totals (popular categories attract more subscribers), then
/// the user's likes follow the VkLikeGenerator model. This is the
/// population whose RankCategories() reproduces Table 1's VK ranking.
Community GenerateVkPopulation(uint32_t users, util::Rng& rng);

/// Generates a `users`-strong population of the Synthetic family (uniform
/// counters in [0, kSyntheticMaxCounter]), whose category totals come out
/// near-equal like Table 1's Synthetic column.
Community GenerateSyntheticPopulation(uint32_t users, util::Rng& rng);

/// Largest counter across the population (the paper reports 152,532 for
/// VK and 500,000 for Synthetic).
Count MaxCounterOf(const Community& population);

}  // namespace csj::data

#endif  // CSJ_DATA_STATS_H_
