#ifndef CSJ_DATA_CASE_STUDIES_H_
#define CSJ_DATA_CASE_STUDIES_H_

#include <cstdint>
#include <span>
#include <vector>

#include "data/categories.h"
#include "data/community_sampler.h"

namespace csj::data {

/// One of the paper's 20 case-study community pairs (Table 2): the named
/// VK pages, their VK page ids, the categories they belong to, the
/// community sizes the paper reports (Tables 3-10), and the exact
/// similarity the paper measured on each dataset family (the Ex-MinMax
/// columns of Tables 4/6 for VK and 8/10 for Synthetic) — the planting
/// targets our generators aim for.
struct CaseStudyCouple {
  int cid;                 ///< the paper's couple id, 1-20
  Category category_b;
  Category category_a;
  const char* name_b;      ///< VK page name (Table 2)
  const char* name_a;
  uint64_t vk_id_b;        ///< VK page id (https://vk.com/public<ID>)
  uint64_t vk_id_a;
  uint32_t size_b;         ///< paper community sizes (full scale)
  uint32_t size_a;
  double target_vk;        ///< exact similarity on VK (fraction)
  double target_synthetic; ///< exact similarity on Synthetic (fraction)
};

/// All 20 couples: cid 1-10 are the different-category studies
/// (similarity >= 15%), cid 11-20 the same-category studies (>= 30%).
std::span<const CaseStudyCouple> AllCaseStudies();
std::span<const CaseStudyCouple> DifferentCategoryCouples();
std::span<const CaseStudyCouple> SameCategoryCouples();

/// Which dataset family a bench materializes a couple for.
enum class DatasetFamily { kVk, kSynthetic };

/// Builds the CoupleSpec for one case study at a size reduction of
/// `scale` (sizes divided by `scale`; 1 reproduces the paper's full
/// sizes). Picks the family's eps and similarity target.
CoupleSpec SpecFor(const CaseStudyCouple& couple, DatasetFamily family,
                   uint32_t scale);

/// Materializes the couple: VK family uses the two categories' VkLike
/// generators, Synthetic uses the uniform generator, per the paper §6.1.
/// Deterministic in (couple.cid, family, scale, seed).
Couple MaterializeCouple(const CaseStudyCouple& couple, DatasetFamily family,
                         uint32_t scale, uint64_t seed);

/// One row of the paper's Table 11 scalability study: a category and the
/// four average couple sizes measured for it.
struct ScalabilityRow {
  Category category;
  uint32_t sizes[4];
};

/// The 20 categories x 4 sizes of Table 11.
std::span<const ScalabilityRow> ScalabilityStudy();

}  // namespace csj::data

#endif  // CSJ_DATA_CASE_STUDIES_H_
