#include "data/generator.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "util/logging.h"

namespace csj::data {

namespace {

/// Standard normal via Box-Muller on the deterministic Rng.
double SampleStandardNormal(util::Rng& rng) {
  double u1 = rng.NextDouble();
  while (u1 <= 0.0) u1 = rng.NextDouble();
  const double u2 = rng.NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

}  // namespace

VkLikeGenerator::VkLikeGenerator(Category home, Params params)
    : home_(home), params_(params) {
  CSJ_CHECK_GE(params_.home_affinity, 0.0);
  CSJ_CHECK_LE(params_.home_affinity, 1.0);
  CSJ_CHECK_GE(params_.taste_log_sigma, 0.0);
  global_weights_.resize(kNumCategories);
  double total = 0.0;
  for (uint32_t c = 0; c < kNumCategories; ++c) {
    global_weights_[c] =
        static_cast<double>(VkTotalLikes(static_cast<Category>(c)));
    total += global_weights_[c];
  }
  for (double& w : global_weights_) w /= total;
}

void VkLikeGenerator::Generate(util::Rng& rng, std::vector<Count>* out) {
  const size_t base = out->size();
  out->resize(base + kNumCategories, 0);
  Count* vec = out->data() + base;

  // Heavy-tailed total activity: a floor of always-counted subscriptions
  // plus a log-normal tail of power likers.
  const double log_activity = params_.activity_log_mean +
                              params_.activity_log_sigma *
                                  SampleStandardNormal(rng);
  const double raw_activity =
      static_cast<double>(params_.min_activity) + std::exp(log_activity);
  const auto activity = static_cast<uint64_t>(std::min(
      raw_activity, static_cast<double>(params_.max_counter)));

  // This user's individual taste: the global category weights perturbed
  // multiplicatively, then renormalized into a per-user CDF. The home
  // devotion also varies per user — some subscribers live on the page,
  // others barely visit — which keeps same-category subscribers' home
  // counters from clustering.
  std::array<double, kNumCategories> cdf;
  double total = 0.0;
  for (uint32_t c = 0; c < kNumCategories; ++c) {
    const double tilt =
        std::exp(params_.taste_log_sigma * SampleStandardNormal(rng));
    total += global_weights_[c] * tilt;
    cdf[c] = total;
  }
  for (double& v : cdf) v /= total;
  cdf.back() = 1.0;
  const double home_affinity = std::clamp(
      params_.home_affinity +
          params_.home_affinity_sigma * SampleStandardNormal(rng),
      0.35, 0.9);

  for (uint64_t like = 0; like < activity; ++like) {
    Category category = home_;
    if (!rng.Bernoulli(home_affinity)) {
      const double u = rng.NextDouble();
      const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
      category = static_cast<Category>(it - cdf.begin());
    }
    Count& counter = vec[DimOf(category)];
    if (counter < params_.max_counter) ++counter;
  }
}

UniformGenerator::UniformGenerator(Dim d, Count max_value)
    : d_(d), max_value_(max_value) {
  CSJ_CHECK_GE(d, 1u);
}

void UniformGenerator::Generate(util::Rng& rng, std::vector<Count>* out) {
  const size_t base = out->size();
  out->resize(base + d_, 0);
  Count* vec = out->data() + base;
  for (Dim k = 0; k < d_; ++k) {
    vec[k] = static_cast<Count>(rng.Below(static_cast<uint64_t>(max_value_) + 1));
  }
}

Community MakeCommunity(UserVectorGenerator& generator, uint32_t size,
                        util::Rng& rng, std::string name) {
  std::vector<Count> flat;
  flat.reserve(static_cast<size_t>(size) * generator.d());
  for (uint32_t i = 0; i < size; ++i) generator.Generate(rng, &flat);
  return Community(generator.d(), std::move(flat), std::move(name));
}

}  // namespace csj::data
