#include "data/io.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

namespace csj::data {

namespace {

constexpr char kMagic[4] = {'C', 'S', 'J', 'B'};
constexpr uint32_t kVersion = 1;

bool WriteU32(std::ofstream& out, uint32_t value) {
  unsigned char bytes[4];
  for (int i = 0; i < 4; ++i) {
    bytes[i] = static_cast<unsigned char>((value >> (8 * i)) & 0xFF);
  }
  out.write(reinterpret_cast<const char*>(bytes), 4);
  return out.good();
}

bool ReadU32(std::ifstream& in, uint32_t* value) {
  unsigned char bytes[4];
  in.read(reinterpret_cast<char*>(bytes), 4);
  if (!in.good()) return false;
  *value = 0;
  for (int i = 0; i < 4; ++i) {
    *value |= static_cast<uint32_t>(bytes[i]) << (8 * i);
  }
  return true;
}

}  // namespace

bool SaveCommunityCsv(const Community& community, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) return false;
  out << "# csj community d=" << community.d() << " name=" << community.name()
      << "\n";
  for (UserId u = 0; u < community.size(); ++u) {
    const std::span<const Count> row = community.User(u);
    for (Dim k = 0; k < community.d(); ++k) {
      if (k != 0) out << ',';
      out << row[k];
    }
    out << '\n';
  }
  return out.good();
}

std::optional<Community> LoadCommunityCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return std::nullopt;

  std::string name;
  std::vector<Count> flat;
  Dim d = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      const size_t name_pos = line.find("name=");
      if (name_pos != std::string::npos) name = line.substr(name_pos + 5);
      continue;
    }
    std::vector<Count> row;
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ',')) {
      char* end = nullptr;
      const unsigned long long value = std::strtoull(cell.c_str(), &end, 10);
      if (end == cell.c_str() || value > UINT32_MAX) return std::nullopt;
      row.push_back(static_cast<Count>(value));
    }
    if (row.empty()) return std::nullopt;
    if (d == 0) {
      d = static_cast<Dim>(row.size());
    } else if (row.size() != d) {
      return std::nullopt;  // ragged rows
    }
    flat.insert(flat.end(), row.begin(), row.end());
  }
  if (d == 0) return std::nullopt;
  return Community(d, std::move(flat), std::move(name));
}

bool SaveCommunityBinary(const Community& community, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) return false;
  out.write(kMagic, 4);
  if (!WriteU32(out, kVersion)) return false;
  if (!WriteU32(out, community.d())) return false;
  if (!WriteU32(out, community.size())) return false;
  const auto name_len = static_cast<uint32_t>(community.name().size());
  if (!WriteU32(out, name_len)) return false;
  out.write(community.name().data(),
            static_cast<std::streamsize>(name_len));
  for (const Count c : community.flat()) {
    if (!WriteU32(out, c)) return false;
  }
  return out.good();
}

std::optional<Community> LoadCommunityBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return std::nullopt;
  char magic[4];
  in.read(magic, 4);
  if (!in.good() || std::memcmp(magic, kMagic, 4) != 0) return std::nullopt;
  uint32_t version = 0;
  uint32_t d = 0;
  uint32_t n = 0;
  uint32_t name_len = 0;
  if (!ReadU32(in, &version) || version != kVersion) return std::nullopt;
  if (!ReadU32(in, &d) || d == 0) return std::nullopt;
  if (!ReadU32(in, &n)) return std::nullopt;
  if (!ReadU32(in, &name_len) || name_len > (1u << 20)) return std::nullopt;
  std::string name(name_len, '\0');
  in.read(name.data(), static_cast<std::streamsize>(name_len));
  if (!in.good() && name_len > 0) return std::nullopt;
  std::vector<Count> flat(static_cast<size_t>(n) * d);
  for (Count& c : flat) {
    if (!ReadU32(in, &c)) return std::nullopt;
  }
  return Community(static_cast<Dim>(d), std::move(flat), std::move(name));
}

}  // namespace csj::data
