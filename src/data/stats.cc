#include "data/stats.h"

#include <algorithm>

#include "data/generator.h"

namespace csj::data {

std::vector<CategoryTotal> RankCategories(const Community& population) {
  std::vector<CategoryTotal> totals(kNumCategories);
  for (uint32_t c = 0; c < kNumCategories; ++c) {
    totals[c] = CategoryTotal{static_cast<Category>(c), 0};
  }
  for (UserId u = 0; u < population.size(); ++u) {
    const std::span<const Count> row = population.User(u);
    for (Dim k = 0; k < population.d() && k < kNumCategories; ++k) {
      totals[k].total_likes += row[k];
    }
  }
  std::sort(totals.begin(), totals.end(),
            [](const CategoryTotal& x, const CategoryTotal& y) {
              if (x.total_likes != y.total_likes) {
                return x.total_likes > y.total_likes;
              }
              return x.category < y.category;
            });
  return totals;
}

Community GenerateVkPopulation(uint32_t users, util::Rng& rng) {
  // Home category ~ Table 1 VK totals: popular categories have more
  // subscribers, which is what concentrates their like totals further.
  std::vector<double> cdf(kNumCategories);
  double total = 0.0;
  for (uint32_t c = 0; c < kNumCategories; ++c) {
    total += static_cast<double>(VkTotalLikes(static_cast<Category>(c)));
    cdf[c] = total;
  }
  for (double& v : cdf) v /= total;
  cdf.back() = 1.0;

  // One generator per home category, created lazily.
  std::vector<std::unique_ptr<VkLikeGenerator>> generators(kNumCategories);
  std::vector<Count> flat;
  flat.reserve(static_cast<size_t>(users) * kNumCategories);
  for (uint32_t i = 0; i < users; ++i) {
    const double u = rng.NextDouble();
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    const auto home = static_cast<uint32_t>(it - cdf.begin());
    if (generators[home] == nullptr) {
      generators[home] =
          std::make_unique<VkLikeGenerator>(static_cast<Category>(home));
    }
    generators[home]->Generate(rng, &flat);
  }
  return Community(kNumCategories, std::move(flat), "vk_population");
}

Community GenerateSyntheticPopulation(uint32_t users, util::Rng& rng) {
  UniformGenerator generator(kNumCategories, kSyntheticMaxCounter);
  Community population = MakeCommunity(generator, users, rng);
  population.set_name("synthetic_population");
  return population;
}

Count MaxCounterOf(const Community& population) {
  return population.MaxCounter();
}

}  // namespace csj::data
