#ifndef CSJ_DATA_IO_H_
#define CSJ_DATA_IO_H_

#include <optional>
#include <string>

#include "core/community.h"

namespace csj::data {

/// Persists a community as CSV: a header line `# csj community d=<d>
/// name=<name>` followed by one comma-separated counter row per user.
/// Human-inspectable; intended for small exports and interchange.
/// Returns false on I/O failure.
bool SaveCommunityCsv(const Community& community, const std::string& path);

/// Loads a CSV produced by SaveCommunityCsv (or any headerless CSV of
/// equal-length unsigned rows). Returns nullopt on parse or I/O failure.
std::optional<Community> LoadCommunityCsv(const std::string& path);

/// Persists a community in the compact binary format: magic "CSJB", then
/// little-endian u32 {version, d, n, name length}, the name bytes, and
/// n*d little-endian u32 counters. The fast path for large datasets.
bool SaveCommunityBinary(const Community& community, const std::string& path);

/// Loads the binary format; validates magic/version/sizes. Returns nullopt
/// on any inconsistency.
std::optional<Community> LoadCommunityBinary(const std::string& path);

}  // namespace csj::data

#endif  // CSJ_DATA_IO_H_
