#ifndef CSJ_DATA_CATEGORIES_H_
#define CSJ_DATA_CATEGORIES_H_

#include <cstdint>
#include <optional>
#include <string>

#include "core/types.h"

namespace csj::data {

/// The 27 VK categories of the paper (Table 1). Every user vector has one
/// dimension per category; dimension index == enum value.
enum class Category : uint8_t {
  kEntertainment = 0,
  kHobbies,
  kRelationshipFamily,
  kBeautyHealth,
  kMedia,
  kSocialPublic,
  kSport,
  kInternet,
  kEducation,
  kCelebrity,
  kAnimals,
  kMusic,
  kCultureArt,
  kFoodRecipes,
  kTourismLeisure,
  kAutoMotor,
  kProductsStores,
  kHomeRenovation,
  kCitiesCountries,
  kProfessionalServices,
  kMedicine,
  kFinanceInsurance,
  kRestaurants,
  kJobSearch,
  kTransportationServices,
  kConsumerServices,
  kCommunicationServices,
};

inline constexpr uint32_t kNumCategories = 27;

/// Dimension index of a category (identity by construction, spelled out
/// for readability at call sites).
inline Dim DimOf(Category category) { return static_cast<Dim>(category); }

/// Table 1 spelling, e.g. "Relationship_family".
const char* CategoryName(Category category);

/// Inverse of CategoryName; nullopt for unknown names.
std::optional<Category> ParseCategory(const std::string& name);

/// Total likes VK accumulated per category in the paper's crawl
/// (Table 1, VK column, rank order by these values). These calibrate the
/// VK-like generator's category weights so the regenerated Table 1
/// reproduces the paper's ranking.
uint64_t VkTotalLikes(Category category);

/// Largest single counter in the paper's datasets (§6.1); the VK-like
/// generator clamps to this and SuperEGO normalizes by it.
inline constexpr Count kVkMaxCounter = 152532;
inline constexpr Count kSyntheticMaxCounter = 500000;

/// The paper's epsilon per dataset family (§6.1).
inline constexpr Epsilon kVkEpsilon = 1;
inline constexpr Epsilon kSyntheticEpsilon = 15000;

}  // namespace csj::data

#endif  // CSJ_DATA_CATEGORIES_H_
