#include "data/community_sampler.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "util/logging.h"

namespace csj::data {

namespace {

/// Perturbs each dimension of `vec` with probability `dim_probability` by
/// a uniform step in [-eps, +eps] (clamped at zero): the result is a
/// guaranteed eps-match of the source.
void PerturbWithinEps(std::span<Count> vec, Epsilon eps,
                      double dim_probability, util::Rng& rng) {
  if (eps == 0) return;
  for (Count& v : vec) {
    if (!rng.Bernoulli(dim_probability)) continue;
    const auto step = static_cast<int64_t>(rng.Between(0, 2 * eps)) -
                      static_cast<int64_t>(eps);
    const int64_t moved = static_cast<int64_t>(v) + step;
    v = moved < 0 ? 0 : static_cast<Count>(moved);
  }
}

}  // namespace

Community PlantCommunityAgainst(const Community& a,
                                UserVectorGenerator& gen_b,
                                const CoupleSpec& spec, util::Rng& rng) {
  CSJ_CHECK_EQ(gen_b.d(), a.d());
  CSJ_CHECK_GT(spec.size_b, 0u);
  const Dim d = a.d();

  const auto planted = static_cast<uint32_t>(std::llround(
      spec.target_similarity * static_cast<double>(spec.size_b)));
  CSJ_CHECK_LE(planted, a.size())
      << "target similarity needs more A users than |a| provides";

  std::vector<uint32_t> slots(a.size());
  std::iota(slots.begin(), slots.end(), 0u);
  util::Shuffle(slots, rng);

  Community b(d);
  b.Reserve(spec.size_b);
  std::vector<Count> scratch;
  for (uint32_t i = 0; i < planted; ++i) {
    scratch.assign(a.User(slots[i]).begin(), a.User(slots[i]).end());
    if (!rng.Bernoulli(spec.exact_copy_fraction)) {
      PerturbWithinEps(scratch, spec.eps, spec.perturb_dim_probability, rng);
    }
    b.AddUser(scratch);
  }
  std::vector<Count> flat;
  for (uint32_t i = planted; i < spec.size_b; ++i) {
    flat.clear();
    gen_b.Generate(rng, &flat);
    b.AddUser(flat);
  }

  std::vector<uint32_t> perm(b.size());
  std::iota(perm.begin(), perm.end(), 0u);
  util::Shuffle(perm, rng);
  Community shuffled(d);
  shuffled.Reserve(b.size());
  for (const uint32_t row : perm) shuffled.AddUser(b.User(row));
  return shuffled;
}

Couple PlantCouple(UserVectorGenerator& gen_b, UserVectorGenerator& gen_a,
                   const CoupleSpec& spec, util::Rng& rng) {
  CSJ_CHECK_EQ(gen_b.d(), gen_a.d());
  CSJ_CHECK_GT(spec.size_b, 0u);
  CSJ_CHECK_LE(spec.size_b, spec.size_a);
  CSJ_CHECK_GE(spec.target_similarity, 0.0);
  CSJ_CHECK_LE(spec.target_similarity, 1.0);
  const Dim d = gen_a.d();

  Couple couple{Community(d), Community(d)};
  couple.a = MakeCommunity(gen_a, spec.size_a, rng);

  // How many of B's users are planted matches, and how many of those come
  // in contention clusters (2 planted pairs each).
  const auto planted = static_cast<uint32_t>(std::llround(
      spec.target_similarity * static_cast<double>(spec.size_b)));
  uint32_t clusters = static_cast<uint32_t>(std::llround(
      spec.contention_fraction * static_cast<double>(planted) / 2.0));
  // Each cluster consumes two A slots and two B slots; keep totals legal.
  clusters = std::min(clusters, planted / 2);
  const uint32_t simple_twins = planted - 2 * clusters;
  const uint32_t a_slots_needed = simple_twins + 2 * clusters;
  CSJ_CHECK_LE(a_slots_needed, spec.size_a)
      << "target similarity needs more A users than size_a provides";

  // Distinct random A slots for the plants.
  std::vector<uint32_t> slots(spec.size_a);
  std::iota(slots.begin(), slots.end(), 0u);
  util::Shuffle(slots, rng);
  slots.resize(a_slots_needed);

  couple.b.Reserve(spec.size_b);
  std::vector<Count> scratch;
  uint32_t next_slot = 0;

  // Simple twins: B user = (usually exact, sometimes perturbed) copy of a
  // distinct A user.
  for (uint32_t i = 0; i < simple_twins; ++i) {
    const uint32_t slot = slots[next_slot++];
    scratch.assign(couple.a.User(slot).begin(), couple.a.User(slot).end());
    if (!rng.Bernoulli(spec.exact_copy_fraction)) {
      PerturbWithinEps(scratch, spec.eps, spec.perturb_dim_probability, rng);
    }
    couple.b.AddUser(scratch);
  }

  // Contention clusters: with base vector v (an existing A user) and a
  // random dimension t,
  //   a1 = v,            a2 = v + 2*eps*e_t   (overwrites a second A slot),
  //   b1                 (matches BOTH a1 and a2),
  //   b2                 (matches a1 only).
  // An exact matcher pairs <b1,a2>,<b2,a1>; a greedy scan that commits b1
  // to a1 before b2 arrives strands b2 — the approximate methods' accuracy
  // loss. Two orientations:
  //   plain:       b1 = v + m*e_t, b2 = v. b2's smaller encoded_id makes
  //                the MinMax scan resolve it first (no loss there); only
  //                storage-order scans like Ap-Baseline's can err.
  //   minmax trap: b1 = v + m*e_t - m*e_u, b2 = v + m*e_u (needs a
  //                dimension u != t with v_u >= m). Now b1 precedes b2
  //                in encoded_id order while a1 precedes a2 in encoded_min
  //                order, so Ap-MinMax commits b1 to a1 and strands b2.
  // The match offset m is eps-1 when eps >= 3 (keeping cluster pairs OFF
  // the exact eps boundary, so SuperEGO's float32 predicate keeps them —
  // the Synthetic tables show no SuperEGO accuracy loss) and eps otherwise
  // (with integer counters and eps = 1 every non-identical match IS a
  // boundary pair; that is precisely the VK regime where the paper reports
  // the loss).
  const Epsilon eps = std::max<Epsilon>(spec.eps, 1);
  const Count m = eps >= 3 ? eps - 1 : eps;
  const Count sep = 2 * m;  // a1-a2 separation; > eps in both regimes
  for (uint32_t c = 0; c < clusters; ++c) {
    const uint32_t slot1 = slots[next_slot++];
    const uint32_t slot2 = slots[next_slot++];
    const Dim t = static_cast<Dim>(rng.Below(d));
    scratch.assign(couple.a.User(slot1).begin(), couple.a.User(slot1).end());

    std::span<Count> a2 = couple.a.MutableUser(slot2);
    std::copy(scratch.begin(), scratch.end(), a2.begin());
    a2[t] += sep;

    Dim u = d;  // candidate second dimension for the trap orientation
    if (rng.Bernoulli(spec.minmax_trap_fraction)) {
      const Dim start = static_cast<Dim>(rng.Below(d));
      for (Dim step = 0; step < d; ++step) {
        const Dim candidate = static_cast<Dim>((start + step) % d);
        if (candidate != t && scratch[candidate] >= m) {
          u = candidate;
          break;
        }
      }
    }

    std::vector<Count> b1 = scratch;
    std::vector<Count> b2 = scratch;
    b1[t] += m;
    if (u < d) {
      b1[u] -= m;
      b2[u] += m;
    }
    couple.b.AddUser(b1);
    couple.b.AddUser(b2);
  }

  // Fillers from B's own category model.
  std::vector<Count> flat;
  for (uint32_t i = planted; i < spec.size_b; ++i) {
    flat.clear();
    gen_b.Generate(rng, &flat);
    couple.b.AddUser(flat);
  }

  // Shuffle B's row order so plants and fillers interleave: the scan-order
  // dependence of the approximate methods stays realistic.
  std::vector<uint32_t> perm(couple.b.size());
  std::iota(perm.begin(), perm.end(), 0u);
  util::Shuffle(perm, rng);
  Community shuffled(d);
  shuffled.Reserve(couple.b.size());
  for (const uint32_t row : perm) shuffled.AddUser(couple.b.User(row));
  couple.b = std::move(shuffled);

  couple.planted_pairs = planted;
  couple.planted_clusters = clusters;
  return couple;
}

}  // namespace csj::data
