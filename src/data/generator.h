#ifndef CSJ_DATA_GENERATOR_H_
#define CSJ_DATA_GENERATOR_H_

#include <memory>
#include <vector>

#include "core/community.h"
#include "core/types.h"
#include "data/categories.h"
#include "util/rng.h"

namespace csj::data {

/// Produces one user preference vector at a time. Implementations model
/// the paper's two dataset families; the sampler composes them with
/// twin-planting into benchmark couples.
class UserVectorGenerator {
 public:
  virtual ~UserVectorGenerator() = default;

  /// Dimensionality of the generated vectors.
  virtual Dim d() const = 0;

  /// Appends one fresh user vector (d() counters) to `out`, which the
  /// caller has cleared or wants extended.
  virtual void Generate(util::Rng& rng, std::vector<Count>* out) = 0;
};

/// VK-like user model (substitute for the paper's 7.8M-user crawl — see
/// DESIGN.md §7). A user has a heavy-tailed total activity (log-normal
/// number of likes) and spends each like on their home category with
/// probability `home_affinity`, otherwise on a category drawn with
/// probability proportional to the paper's Table 1 VK totals. The result
/// reproduces the crawl's defining shapes: category totals spanning four
/// orders of magnitude in Table 1's exact ranking, per-dimension counts
/// concentrated at small values (which makes eps = 1 meaningful), and a
/// long activity tail clamped at kVkMaxCounter.
class VkLikeGenerator : public UserVectorGenerator {
 public:
  struct Params {
    double home_affinity = 0.6;       ///< share of likes going to home
    double activity_log_mean = 3.2;   ///< log-normal mu of total likes
    double activity_log_sigma = 1.2;  ///< log-normal sigma
    /// Minimum total likes per user. Keeps two independent users from
    /// eps-matching by both being near-silent: with eps = 1, couple
    /// similarity must be carried by genuinely similar profiles (the
    /// sampler's plants), not by empty vectors, at EVERY community size —
    /// a filler pair that matches with probability p makes accidental
    /// similarity ~ 1-(1-p)^|A|, so p must stay << 1/|A| for the paper's
    /// full-scale sizes too.
    uint64_t min_activity = 200;
    Count max_counter = kVkMaxCounter;
    /// Per-user taste heterogeneity: each user's category weights are the
    /// global Table 1 weights perturbed by exp(N(0, taste_log_sigma)) per
    /// category. Without it, two same-category subscribers of similar
    /// activity land on nearly identical vectors and eps = 1 "accidental"
    /// matches swamp the genuine ones — with it, profiles differ in WHERE
    /// the likes go, as real users' do.
    double taste_log_sigma = 1.5;
    /// Std-dev of the per-user home-devotion jitter around home_affinity
    /// (clamped to [0.35, 0.9] so no cluster of home-silent users forms).
    double home_affinity_sigma = 0.15;
  };

  /// Generates subscribers of a `home` category community with the
  /// default parameters.
  explicit VkLikeGenerator(Category home) : VkLikeGenerator(home, Params{}) {}

  /// Generates subscribers of a `home` category community.
  VkLikeGenerator(Category home, Params params);

  Dim d() const override { return kNumCategories; }
  void Generate(util::Rng& rng, std::vector<Count>* out) override;

  Category home() const { return home_; }

 private:
  Category home_;
  Params params_;
  std::vector<double> global_weights_;  // Table 1 VK totals, normalized
};

/// The paper's Synthetic family: every counter is an independent uniform
/// integer in [0, max_value]. With eps = 15000 a random cross pair matches
/// on one dimension with probability ~6% and on all 27 essentially never,
/// so couple similarity is governed entirely by the sampler's planted
/// twins — matching the Synthetic tables' behaviour where exact methods
/// agree perfectly.
class UniformGenerator : public UserVectorGenerator {
 public:
  UniformGenerator(Dim d, Count max_value);

  Dim d() const override { return d_; }
  void Generate(util::Rng& rng, std::vector<Count>* out) override;

 private:
  Dim d_;
  Count max_value_;
};

/// Convenience: builds a community of `size` users from `generator`.
Community MakeCommunity(UserVectorGenerator& generator, uint32_t size,
                        util::Rng& rng, std::string name = "");

}  // namespace csj::data

#endif  // CSJ_DATA_GENERATOR_H_
