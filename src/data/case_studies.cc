#include "data/case_studies.h"

#include <algorithm>
#include <array>

#include "util/logging.h"

namespace csj::data {

namespace {

using enum Category;

// Tables 2-10 condensed: names/ids from Table 2, sizes from Tables 3/5,
// exact similarities from the Ex-MinMax columns of Tables 4/6 (VK) and
// 8/10 (Synthetic).
constexpr std::array<CaseStudyCouple, 20> kCaseStudies = {{
    // cid 1-10: different categories (similarity >= 15%).
    {1, kRestaurants, kFoodRecipes, "Quick Recipes", "Salads | Best Recipes",
     165062392, 94216909, 109176, 116016, 0.2081, 0.1774},
    {2, kHobbies, kSport, "Happiness", "Sportshacker", 23337480, 128350290,
     156213, 230017, 0.1546, 0.1600},
    {3, kCultureArt, kEducation, "Moment of history",
     "This is a fact | Science and Facts", 143826157, 45688121, 134961,
     138199, 0.2495, 0.2415},
    {4, kMedicine, kBeautyHealth, "Health secrets. What is said by doctors?",
     "Fashionable girl", 55122354, 36085261, 120783, 185393, 0.1642, 0.1657},
    {5, kMedia, kEntertainment, "First channel", "Nice line", 25380626,
     26669118, 197415, 330944, 0.1752, 0.1549},
    {6, kSocialPublic, kRelationshipFamily, "About women's",
     "Successful girl", 33382046, 24036559, 118993, 131297, 0.2438, 0.2456},
    {7, kCitiesCountries, kTourismLeisure, "The best of Saint Petersburg",
     "Vandrouki | Travel almost free", 31516466, 63731512, 140114, 257419,
     0.2222, 0.2213},
    {8, kHomeRenovation, kProductsStores, "Housing problem",
     "Business quote book", 42541008, 28556858, 167585, 182815, 0.1553,
     0.1557},
    {9, kCelebrity, kMusic, "Jah Khalib", "My audios", 26211015, 105999460,
     125248, 189937, 0.1752, 0.1590},
    {10, kJobSearch, kFinanceInsurance, "Job in Moscow", "VK Pay", 31154183,
     166850908, 55918, 109622, 0.2156, 0.0785},
    // cid 11-20: same categories (similarity >= 30%).
    {11, kFoodRecipes, kFoodRecipes, "Cooking: delicious recipes",
     "Cooking at home: delicious and easy", 42092461, 40020627, 180158,
     196135, 0.3152, 0.3063},
    {12, kFoodRecipes, kFoodRecipes, "Simple recipes",
     "Best Chef's Recipes", 83935640, 18464856, 180351, 272320, 0.3210,
     0.3057},
    {13, kSport, kSport, "FC Barcelona", "Football Europe", 22746750,
     23693281, 179412, 234508, 0.3954, 0.3373},
    {14, kSport, kSport, "World Russian Premier League", "Football Europe",
     51812607, 23693281, 184663, 234508, 0.3710, 0.3085},
    {15, kBeautyHealth, kBeautyHealth, "World of beauty", "Fashionable girl",
     34981365, 36085261, 163176, 185393, 0.3693, 0.3664},
    {16, kBeautyHealth, kBeautyHealth, "Beauty | Fashion | Show Business",
     "Fashionable girl", 32922940, 36085261, 178138, 185393, 0.3058, 0.3041},
    {17, kRelationshipFamily, kRelationshipFamily, "More than just lines",
     "Just love", 32651025, 28293246, 165509, 190027, 0.3535, 0.3531},
    {18, kRelationshipFamily, kRelationshipFamily, "Modern mom", "MAMA",
     55074079, 20249656, 147140, 175929, 0.3226, 0.3172},
    {19, kProductsStores, kProductsStores, "Business quote book",
     "Business Strategy | Success in life", 28556858, 30559917, 182815,
     201038, 0.3188, 0.3148},
    {20, kProductsStores, kProductsStores, "Smart Money | Business Magazine",
     "Business Strategy | Success in life", 34483558, 30559917, 161991,
     201038, 0.3350, 0.3327},
}};

// Table 11: category and the four average couple sizes.
constexpr std::array<ScalabilityRow, 20> kScalability = {{
    {kFoodRecipes, {124453, 200966, 332977, 417492}},
    {kRestaurants, {27733, 50802, 71114, 111713}},
    {kHobbies, {212071, 326951, 432853, 538492}},
    {kSport, {107770, 156762, 199233, 248901}},
    {kEducation, {128905, 200466, 317041, 414692}},
    {kCultureArt, {54381, 106885, 157236, 228763}},
    {kBeautyHealth, {149171, 211701, 256387, 318470}},
    {kMedicine, {21290, 41438, 62333, 84311}},
    {kEntertainment, {445364, 651230, 841407, 1110846}},
    {kMedia, {117231, 220804, 335845, 406973}},
    {kRelationshipFamily, {121910, 169862, 212582, 283532}},
    {kSocialPublic, {80552, 135060, 182865, 269604}},
    {kTourismLeisure, {104403, 147984, 204376, 248205}},
    {kCitiesCountries, {53271, 94130, 133765, 163201}},
    {kProductsStores, {112425, 157593, 219171, 265760}},
    {kHomeRenovation, {101381, 149484, 188986, 274326}},
    {kCelebrity, {105339, 160277, 206374, 255239}},
    {kMusic, {110695, 158516, 201757, 251919}},
    {kFinanceInsurance, {24620, 49505, 70196, 108028}},
    {kJobSearch, {16728, 30787, 45597, 62418}},
}};

}  // namespace

std::span<const CaseStudyCouple> AllCaseStudies() { return kCaseStudies; }

std::span<const CaseStudyCouple> DifferentCategoryCouples() {
  return std::span<const CaseStudyCouple>(kCaseStudies).subspan(0, 10);
}

std::span<const CaseStudyCouple> SameCategoryCouples() {
  return std::span<const CaseStudyCouple>(kCaseStudies).subspan(10, 10);
}

CoupleSpec SpecFor(const CaseStudyCouple& couple, DatasetFamily family,
                   uint32_t scale) {
  CSJ_CHECK_GE(scale, 1u);
  CoupleSpec spec;
  spec.size_b = std::max<uint32_t>(couple.size_b / scale, 16);
  spec.size_a = std::max<uint32_t>(couple.size_a / scale, spec.size_b);
  spec.eps = family == DatasetFamily::kVk ? kVkEpsilon : kSyntheticEpsilon;
  spec.target_similarity = family == DatasetFamily::kVk
                               ? couple.target_vk
                               : couple.target_synthetic;
  return spec;
}

Couple MaterializeCouple(const CaseStudyCouple& couple, DatasetFamily family,
                         uint32_t scale, uint64_t seed) {
  const CoupleSpec spec = SpecFor(couple, family, scale);
  // Distinct deterministic stream per (couple, family, scale, seed).
  uint64_t mix = seed;
  mix ^= static_cast<uint64_t>(couple.cid) * uint64_t{0x9E3779B97F4A7C15};
  mix ^= (family == DatasetFamily::kVk ? 1ULL : 2ULL) << 32;
  mix ^= static_cast<uint64_t>(scale) << 40;
  util::Rng rng(mix);

  Couple result{Community(kNumCategories), Community(kNumCategories)};
  if (family == DatasetFamily::kVk) {
    VkLikeGenerator gen_b(couple.category_b);
    VkLikeGenerator gen_a(couple.category_a);
    result = PlantCouple(gen_b, gen_a, spec, rng);
  } else {
    UniformGenerator gen_b(kNumCategories, kSyntheticMaxCounter);
    UniformGenerator gen_a(kNumCategories, kSyntheticMaxCounter);
    result = PlantCouple(gen_b, gen_a, spec, rng);
  }
  result.b.set_name(couple.name_b);
  result.a.set_name(couple.name_a);
  return result;
}

std::span<const ScalabilityRow> ScalabilityStudy() { return kScalability; }

}  // namespace csj::data
