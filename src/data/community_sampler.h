#ifndef CSJ_DATA_COMMUNITY_SAMPLER_H_
#define CSJ_DATA_COMMUNITY_SAMPLER_H_

#include <cstdint>

#include "core/community.h"
#include "core/types.h"
#include "data/generator.h"
#include "util/rng.h"

namespace csj::data {

/// Recipe for one benchmark couple <B, A>.
///
/// The paper selected its 20 case-study couples by exploring real VK pages
/// until each comparison reached the targeted similarity band (>= 15% for
/// different categories, >= 30% for same). Without the crawl we invert the
/// process: generate A from its category's model, then PLANT a controlled
/// fraction of B as eps-twins of distinct A users so the exact similarity
/// lands at the paper's reported operating point, and fill the rest of B
/// from B's own category model (whose accidental matches can push realized
/// similarity slightly above target, exactly like the paper's ">=" bands).
struct CoupleSpec {
  uint32_t size_b = 0;
  uint32_t size_a = 0;

  /// Fraction of B users planted as guaranteed matches (~ the exact
  /// methods' similarity).
  double target_similarity = 0.0;

  /// Fraction of planted pairs built as CONTENTION CLUSTERS: two B users
  /// sharing overlapping A candidates such that a greedy first-match
  /// commitment can strand one of them. This is what separates the
  /// approximate methods' similarity from the exact ones' (Tables 3 vs 4),
  /// and different scan orders resolve the contention differently, giving
  /// the small Ap-Baseline vs Ap-MinMax deltas the paper reports.
  double contention_fraction = 0.10;

  /// The eps the couple will be joined with (twins are perturbed within
  /// +/- eps per dimension).
  Epsilon eps = 1;

  /// Fraction of simple twins planted as EXACT copies of their A user.
  /// CSJ's semantics make this the realistic default: a matched pair "is
  /// the same person in a different audience" (§3), and a user's counters
  /// are platform-global, so the same subscriber carries an identical
  /// vector into both communities. The remaining twins are perturbed
  /// within +/- eps and often sit exactly at the eps boundary — those are
  /// the pairs SuperEGO's float32 normalization loses on VK-scale
  /// counters, which is what keeps its accuracy gap (Tables 3-6) at the
  /// paper's few-percent magnitude instead of 0% or 100%.
  double exact_copy_fraction = 0.95;

  /// For perturbed twins: probability that each dimension moves at all.
  double perturb_dim_probability = 0.5;

  /// Fraction of contention clusters built in the "encoded-order trap"
  /// orientation, where the ambiguous B user precedes its constrained
  /// sibling in encoded_id order and its safe partner precedes the shared
  /// one in encoded_min order — the configuration where Ap-MinMax's scan
  /// commits wrongly. The remaining clusters trap only order-agnostic
  /// scans (Ap-Baseline's storage order), which is why the two approximate
  /// methods report slightly different similarities in Tables 3/5/7/9.
  double minmax_trap_fraction = 0.25;
};

/// A generated couple plus planting bookkeeping for tests.
struct Couple {
  Community b;
  Community a;
  uint32_t planted_pairs = 0;    ///< guaranteed one-to-one matches
  uint32_t planted_clusters = 0; ///< contention clusters among them
};

/// Builds a couple per `spec`. `gen_b` fills B's non-planted users, `gen_a`
/// builds all of A; both must share dimensionality. Deterministic in `rng`.
Couple PlantCouple(UserVectorGenerator& gen_b, UserVectorGenerator& gen_a,
                   const CoupleSpec& spec, util::Rng& rng);

/// Plants a new community of `spec.size_b` users against an EXISTING
/// community `a` (which is left untouched): `spec.target_similarity *
/// size_b` users are twins of distinct users of `a`, the rest come from
/// `gen_b`. Used when one side is a real, fixed community — e.g. the
/// pipeline's pivot brand. Because `a` cannot be modified, no contention
/// clusters are planted (spec.contention_fraction is ignored), so here
/// approximate and exact methods see essentially the same similarity.
/// `spec.size_a` is ignored; twins require target*size_b <= |a|.
Community PlantCommunityAgainst(const Community& a,
                                UserVectorGenerator& gen_b,
                                const CoupleSpec& spec, util::Rng& rng);

}  // namespace csj::data

#endif  // CSJ_DATA_COMMUNITY_SAMPLER_H_
