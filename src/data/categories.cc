#include "data/categories.h"

#include <array>

#include "util/logging.h"

namespace csj::data {

namespace {

constexpr std::array<const char*, kNumCategories> kNames = {
    "Entertainment",
    "Hobbies",
    "Relationship_family",
    "Beauty_health",
    "Media",
    "Social_public",
    "Sport",
    "Internet",
    "Education",
    "Celebrity",
    "Animals",
    "Music",
    "Culture_art",
    "Food_recipes",
    "Tourism_leisure",
    "Auto_motor",
    "Products_stores",
    "Home_renovation",
    "Cities_countries",
    "Professional_Services",
    "Medicine",
    "Finance_insurance",
    "Restaurants",
    "Job_search",
    "Transportation_Services",
    "Consumer_Services",
    "Communication_Services",
};

// Table 1, VK column, in enum (== rank) order.
constexpr std::array<uint64_t, kNumCategories> kVkTotals = {
    2111519450ULL, 602445614ULL, 384993747ULL, 318695199ULL, 296466970ULL,
    255007945ULL,  245830867ULL, 206085821ULL, 197289902ULL, 167468242ULL,
    159569729ULL,  153686427ULL, 141107189ULL, 140212548ULL, 140054637ULL,
    136991765ULL,  131752523ULL, 120091854ULL, 74006530ULL,  33024545ULL,
    32135820ULL,   30961892ULL,  6473240ULL,   1853720ULL,   1385538ULL,
    810889ULL,     474492ULL,
};

}  // namespace

const char* CategoryName(Category category) {
  const auto index = static_cast<size_t>(category);
  CSJ_CHECK_LT(index, kNumCategories);
  return kNames[index];
}

std::optional<Category> ParseCategory(const std::string& name) {
  for (uint32_t i = 0; i < kNumCategories; ++i) {
    if (name == kNames[i]) return static_cast<Category>(i);
  }
  return std::nullopt;
}

uint64_t VkTotalLikes(Category category) {
  const auto index = static_cast<size_t>(category);
  CSJ_CHECK_LT(index, kNumCategories);
  return kVkTotals[index];
}

}  // namespace csj::data
