#ifndef CSJ_SERVICE_RESULT_CACHE_H_
#define CSJ_SERVICE_RESULT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/types.h"
#include "service/topk.h"

namespace csj::service {

/// Identity of one cacheable top-k computation. Two queries with equal
/// keys are the SAME computation: the catalog was in the same stable
/// state (`state_version`, the catalog's mutation-clock tag), the query
/// community had the same content (64-bit FNV fingerprint over d, size
/// and every counter — the same content identity the encoding cache keys
/// on), and every result-affecting option matched. `prescreen` is part of
/// the key even though both modes return identical rankings — keeping the
/// arms separate means a differential harness comparing them can never be
/// fooled by one arm serving the other's entry.
struct ResultCacheKey {
  uint64_t state_version = 0;
  uint64_t query_fingerprint = 0;
  uint32_t k = 0;
  Epsilon eps = 0;
  uint16_t method = 0;
  uint8_t prescreen = 0;
  uint8_t use_bound_cutoff = 0;
  double prescreen_threshold = 0.0;

  friend bool operator==(const ResultCacheKey&,
                         const ResultCacheKey&) = default;
};

/// Sharded hot-query result cache for TopKSimilarService rankings.
///
/// The cache stores COMPLETE rankings only (never deadline partials),
/// each tagged with the catalog state it was computed against. The
/// versioned-invalidation contract:
///
///  - Insert(key, entries) requires the caller to have PROVEN stability:
///    catalog.mutations_finished() before the compute equaled
///    catalog.mutations_started() after it (see catalog.h). The tag is
///    that common value, carried in key.state_version.
///  - Lookup(key) only ever returns an entry whose FULL key — including
///    state_version — matches. The caller forms the key from the current
///    clock, so a cached ranking from any older catalog state can never
///    be returned: invalidation is free, no sweep, no epochs, just the
///    monotonic clock refusing to repeat itself.
///
/// Hence a hit is byte-identical to recomputing the query at the moment
/// of the lookup (the rankings are deterministic functions of (state,
/// key)), which is exactly the property the differential tests assert.
///
/// Memory: shards hold at most `capacity / shards` rankings each, FIFO-
/// evicted. Because the clock is monotonic, entries tagged older than the
/// shard's newest tag are unreachable; any insert carrying a NEWER tag
/// drops the shard's whole map first (counted in `invalidations`), so
/// churn cannot strand dead rankings until eviction.
///
/// Thread-safety: fully synchronized (per-shard mutex + atomic counters).
class TopKResultCache {
 public:
  /// Shared, immutable cached ranking: hits hand out the pointer, so the
  /// hot path never copies entry vectors under the shard lock.
  using Ranking = std::shared_ptr<const std::vector<TopKEntry>>;

  struct Options {
    uint32_t shards = 16;     ///< clamped to >= 1
    size_t capacity = 4096;   ///< total rankings across shards (>= shards)
  };

  TopKResultCache();
  explicit TopKResultCache(Options options);

  /// The cached ranking for `key`, or nullptr. Counted as hit/miss.
  Ranking Lookup(const ResultCacheKey& key);

  /// Installs a complete ranking computed at key.state_version. Replaces
  /// an equal-key entry (benign race of two same-key misses). Entries
  /// tagged OLDER than the shard's newest state are dropped instead of
  /// installed — they are unreachable (the clock never goes back).
  void Insert(const ResultCacheKey& key, Ranking ranking);

  /// Drops every cached ranking (tests / manual resets).
  void Clear();

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t invalidations = 0;  ///< shard maps dropped by a newer tag
    uint64_t evictions = 0;      ///< FIFO capacity evictions
    uint64_t entries = 0;        ///< rankings resident right now

    double HitRate() const {
      const uint64_t total = hits + misses;
      return total == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(total);
    }
  };
  Stats GetStats() const;

 private:
  struct KeyHash {
    size_t operator()(const ResultCacheKey& key) const;
  };

  struct alignas(64) Shard {
    std::mutex mu;
    /// Newest state_version ever inserted into this shard; inserts with a
    /// newer tag clear the map (everything older is unreachable).
    uint64_t newest_state = 0;
    std::unordered_map<ResultCacheKey, Ranking, KeyHash> rankings;
    std::deque<ResultCacheKey> fifo;  ///< insertion order, for eviction
  };

  Shard& ShardOf(const ResultCacheKey& key);

  Options options_;
  size_t shard_capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> insertions_{0};
  std::atomic<uint64_t> invalidations_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace csj::service

#endif  // CSJ_SERVICE_RESULT_CACHE_H_
