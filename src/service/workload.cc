#include "service/workload.h"

#include <algorithm>
#include <string>

#include "data/community_sampler.h"
#include "data/generator.h"
#include "util/logging.h"

namespace csj::service {

namespace {

data::Category CategoryOf(uint32_t index) {
  return static_cast<data::Category>(index % data::kNumCategories);
}

uint32_t JitteredSize(const WorkloadOptions& options, util::Rng& rng) {
  const double jitter = std::clamp(options.size_jitter, 0.0, 0.9);
  const auto lo = static_cast<uint32_t>(
      static_cast<double>(options.community_size) * (1.0 - jitter));
  const auto hi = static_cast<uint32_t>(
      static_cast<double>(options.community_size) * (1.0 + jitter));
  return static_cast<uint32_t>(
      rng.Between(std::max(lo, 8u), std::max(hi, std::max(lo, 8u))));
}

/// PlantCommunityAgainst copies floor(target * size_b) of the anchor's
/// users; keep that below the anchor's own audience so wide plant bands
/// (plant_hi near 1) stay valid against small anchors.
double CapPlantTarget(double target, const Community& anchor,
                      uint32_t size_b) {
  return std::min(target, 0.9 * static_cast<double>(anchor.size()) /
                              static_cast<double>(size_b));
}

}  // namespace

ServeWorkload::ServeWorkload(const WorkloadOptions& options)
    : options_(options),
      popularity_(std::max(options.catalog_size, 1u),
                  std::max(options.zipf_s, 0.0)) {
  CSJ_CHECK_GT(options_.catalog_size, 0u);
  options_.cluster_size = std::max(options_.cluster_size, 1u);
  options_.plant_lo = std::clamp(options_.plant_lo, 0.0, 1.0);
  options_.plant_hi = std::clamp(options_.plant_hi, options_.plant_lo, 1.0);
  util::Rng rng(options_.seed);
  communities_.reserve(options_.catalog_size);
  for (uint32_t i = 0; i < options_.catalog_size; ++i) {
    data::VkLikeGenerator gen(CategoryOf(i / options_.cluster_size));
    const uint32_t size = JitteredSize(options_, rng);
    Community community(gen.d());
    if (i % options_.cluster_size == 0 || anchors_.empty()) {
      anchors_.push_back(i);
      community = data::MakeCommunity(gen, size, rng);
    } else {
      // Cluster member: plant a [plant_lo, plant_hi] slice of the
      // anchor's audience (stepped, 5 grades) so the exact top-k has
      // genuine, graded winners. Defaults reproduce the historical
      // 0.15 + 0.05 * (i % 5) band exactly.
      const Community& anchor = *communities_[anchors_.back()];
      data::CoupleSpec spec;
      spec.size_b = size;
      spec.eps = options_.eps;
      spec.target_similarity = CapPlantTarget(
          options_.plant_lo + (options_.plant_hi - options_.plant_lo) *
                                  (static_cast<double>(i % 5) / 4.0),
          anchor, size);
      community = data::PlantCommunityAgainst(anchor, gen, spec, rng);
    }
    community.set_name("brand_" + std::to_string(i + 1));
    communities_.push_back(
        std::make_shared<const Community>(std::move(community)));
  }
}

void ServeWorkload::Populate(CsjServer* server) const {
  for (uint32_t i = 0; i < communities_.size(); ++i) {
    server->catalog().Upsert(i + 1, Community(*communities_[i]));
  }
}

std::shared_ptr<const Community> ServeWorkload::MintCommunity(
    util::Rng& rng) const {
  const uint32_t anchor_index = anchors_[rng.Below(anchors_.size())];
  const Community& anchor = *communities_[anchor_index];
  data::VkLikeGenerator gen(CategoryOf(anchor_index));
  data::CoupleSpec spec;
  spec.size_b = JitteredSize(options_, rng);
  spec.eps = options_.eps;
  spec.target_similarity =
      CapPlantTarget(0.10 + 0.20 * rng.NextDouble(), anchor, spec.size_b);
  util::Rng fork = rng.Fork();
  return std::make_shared<const Community>(
      data::PlantCommunityAgainst(anchor, gen, spec, fork));
}

ServeRequest ServeWorkload::NextRequest(
    util::Rng& rng, const TopKOptions& topk_template) const {
  ServeRequest request;
  request.deadline_seconds = options_.deadline_seconds;
  const double roll = rng.NextDouble();
  if (roll < options_.upsert_fraction) {
    request.kind = RequestKind::kUpsert;
    request.id = 1 + rng.Below(options_.catalog_size);
    request.community = MintCommunity(rng);
  } else if (roll < options_.upsert_fraction + options_.remove_fraction) {
    request.kind = RequestKind::kRemove;
    request.id = 1 + rng.Below(options_.catalog_size);
  } else {
    request.kind = RequestKind::kTopK;
    // Popularity-ranked pivot: rank r maps to community r (rank 0 = the
    // hottest brand). With zipf_s = 0 this is uniform.
    const uint32_t rank = popularity_.Sample(rng);
    request.community = communities_[std::min(
        rank, static_cast<uint32_t>(communities_.size()) - 1)];
    request.topk = topk_template;
  }
  return request;
}

}  // namespace csj::service
