#include "service/workload.h"

#include <algorithm>
#include <string>

#include "data/community_sampler.h"
#include "data/generator.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace csj::service {

namespace {

data::Category CategoryOf(uint32_t index) {
  return static_cast<data::Category>(index % data::kNumCategories);
}

uint32_t JitteredSize(const WorkloadOptions& options, util::Rng& rng) {
  const double jitter = std::clamp(options.size_jitter, 0.0, 0.9);
  const auto lo = static_cast<uint32_t>(
      static_cast<double>(options.community_size) * (1.0 - jitter));
  const auto hi = static_cast<uint32_t>(
      static_cast<double>(options.community_size) * (1.0 + jitter));
  return static_cast<uint32_t>(
      rng.Between(std::max(lo, 8u), std::max(hi, std::max(lo, 8u))));
}

/// PlantCommunityAgainst copies floor(target * size_b) of the anchor's
/// users; keep that below the anchor's own audience so wide plant bands
/// (plant_hi near 1) stay valid against small anchors.
double CapPlantTarget(double target, const Community& anchor,
                      uint32_t size_b) {
  return std::min(target, 0.9 * static_cast<double>(anchor.size()) /
                              static_cast<double>(size_b));
}

}  // namespace

ServeWorkload::ServeWorkload(const WorkloadOptions& options)
    : options_(options),
      popularity_(std::max(options.catalog_size, 1u),
                  std::max(options.zipf_s, 0.0)) {
  CSJ_CHECK_GT(options_.catalog_size, 0u);
  options_.cluster_size = std::max(options_.cluster_size, 1u);
  options_.plant_lo = std::clamp(options_.plant_lo, 0.0, 1.0);
  options_.plant_hi = std::clamp(options_.plant_hi, options_.plant_lo, 1.0);
  const uint32_t n = options_.catalog_size;
  const uint32_t cluster = options_.cluster_size;

  // Per-community seed forking: community i's generator state depends
  // only on (workload seed, i), never on which thread builds it or in
  // what order, so the parallel build is bit-reproducible at every pool
  // size (and a 1M-community catalog no longer takes a serial eternity).
  util::Rng seeder(options_.seed);
  std::vector<uint64_t> seeds(n);
  for (uint64_t& seed : seeds) seed = seeder();

  communities_.resize(n);
  anchors_.reserve((n + cluster - 1) / cluster);
  for (uint32_t i = 0; i < n; i += cluster) anchors_.push_back(i);

  util::ThreadPool& pool = util::ThreadPool::Global();

  // Phase 1: anchors, each drawn independently from its forked seed.
  pool.Run(static_cast<uint32_t>(anchors_.size()), [&](uint32_t t) {
    const uint32_t i = anchors_[t];
    util::Rng rng(seeds[i]);
    data::VkLikeGenerator gen(CategoryOf(i / cluster));
    Community community =
        data::MakeCommunity(gen, JitteredSize(options_, rng), rng);
    community.set_name("brand_" + std::to_string(i + 1));
    communities_[i] = std::make_shared<const Community>(std::move(community));
  });

  // Phase 2: cluster members, planted against their (now built) anchor:
  // a [plant_lo, plant_hi] slice of the anchor's audience, stepped in 5
  // grades, so the exact top-k has genuine, graded winners.
  pool.Run(n, [&](uint32_t i) {
    if (i % cluster == 0) return;  // anchor, built in phase 1
    util::Rng rng(seeds[i]);
    data::VkLikeGenerator gen(CategoryOf(i / cluster));
    const uint32_t size = JitteredSize(options_, rng);
    const Community& anchor = *communities_[i - i % cluster];
    data::CoupleSpec spec;
    spec.size_b = size;
    spec.eps = options_.eps;
    spec.target_similarity = CapPlantTarget(
        options_.plant_lo + (options_.plant_hi - options_.plant_lo) *
                                (static_cast<double>(i % 5) / 4.0),
        anchor, size);
    Community community = data::PlantCommunityAgainst(anchor, gen, spec, rng);
    community.set_name("brand_" + std::to_string(i + 1));
    communities_[i] = std::make_shared<const Community>(std::move(community));
  });
}

void ServeWorkload::Populate(CsjServer* server, PopulateStats* stats) const {
  util::Timer timer;
  const uint32_t n = static_cast<uint32_t>(communities_.size());
  // The workload's communities are already frozen immutable buffers —
  // the zero-copy BulkLoad installs them as-is, no per-entry copy.
  std::vector<std::pair<uint64_t, std::shared_ptr<const Community>>> batch;
  batch.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    batch.emplace_back(i + 1, communities_[i]);
  }
  CommunityCatalog::BulkLoadStats bulk_stats;
  server->catalog().BulkLoad(std::move(batch), &bulk_stats);
  if (stats != nullptr) {
    stats->bulk = true;
    stats->entries = n;
    stats->encode_seconds = bulk_stats.encode_seconds;
    stats->sketch_seconds = bulk_stats.sketch_seconds;
    stats->install_seconds = bulk_stats.install_seconds;
    stats->total_seconds = timer.Seconds();
    stats->entries_per_sec =
        stats->total_seconds > 0 ? n / stats->total_seconds : 0.0;
  }
}

void ServeWorkload::PopulateSequential(CsjServer* server,
                                       PopulateStats* stats) const {
  util::Timer timer;
  const uint32_t n = static_cast<uint32_t>(communities_.size());
  // Parallel install: catalog shards take per-shard locks, and seeded ids
  // never collide, so entries can stream in concurrently. (The mutation
  // clock ticks n times either way; nothing is serving yet.)
  util::ThreadPool::Global().Run(n, [&](uint32_t i) {
    server->catalog().Upsert(i + 1, Community(*communities_[i]));
  });
  if (stats != nullptr) {
    stats->bulk = false;
    stats->entries = n;
    stats->total_seconds = timer.Seconds();
    stats->entries_per_sec =
        stats->total_seconds > 0 ? n / stats->total_seconds : 0.0;
  }
}

std::shared_ptr<const Community> ServeWorkload::MintCommunity(
    util::Rng& rng) const {
  return MintAgainstAnchor(rng);
}

std::shared_ptr<const Community> ServeWorkload::MintAgainstAnchor(
    util::Rng& rng, uint64_t* anchor_id) const {
  const uint32_t anchor_index = anchors_[rng.Below(anchors_.size())];
  if (anchor_id != nullptr) *anchor_id = anchor_index + 1;
  const Community& anchor = *communities_[anchor_index];
  data::VkLikeGenerator gen(CategoryOf(anchor_index));
  data::CoupleSpec spec;
  spec.size_b = JitteredSize(options_, rng);
  spec.eps = options_.eps;
  spec.target_similarity =
      CapPlantTarget(0.10 + 0.20 * rng.NextDouble(), anchor, spec.size_b);
  util::Rng fork = rng.Fork();
  return std::make_shared<const Community>(
      data::PlantCommunityAgainst(anchor, gen, spec, fork));
}

ServeRequest ServeWorkload::NextRequest(
    util::Rng& rng, const TopKOptions& topk_template) const {
  ServeRequest request;
  request.deadline_seconds = options_.deadline_seconds;
  const double roll = rng.NextDouble();
  if (roll < options_.upsert_fraction) {
    request.kind = RequestKind::kUpsert;
    request.id = 1 + rng.Below(options_.catalog_size);
    request.community = MintCommunity(rng);
  } else if (roll < options_.upsert_fraction + options_.remove_fraction) {
    request.kind = RequestKind::kRemove;
    request.id = 1 + rng.Below(options_.catalog_size);
  } else {
    request.kind = RequestKind::kTopK;
    // Popularity-ranked pivot: rank r maps to community r (rank 0 = the
    // hottest brand). With zipf_s = 0 this is uniform.
    const uint32_t rank = popularity_.Sample(rng);
    request.community = communities_[std::min(
        rank, static_cast<uint32_t>(communities_.size()) - 1)];
    request.topk = topk_template;
  }
  return request;
}

}  // namespace csj::service
