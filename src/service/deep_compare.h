#ifndef CSJ_SERVICE_DEEP_COMPARE_H_
#define CSJ_SERVICE_DEEP_COMPARE_H_

#include "core/types.h"
#include "service/catalog.h"

namespace csj::service {

/// Deep byte-identity between two quiesced catalogs: entries (id,
/// version, digest, counters, sketch bytes) AND signature-index layout.
/// Pack layout is compared through per-shard probes — an inert probe
/// (threshold 0) enumerates every slot in pack/slot order, so identical
/// candidate SEQUENCES plus identical sweep stats pin the physical
/// layout; a thresholded probe additionally exercises the pack
/// prefilter on both sides. ProbeCandidates cannot stand in for the
/// layout half because it re-sorts candidates by id.
///
/// The in-RAM mutation journal is deliberately NOT compared: it is
/// bounded history, not state — a restored catalog starts with an empty
/// journal and consumers resynchronize via mutation_seq() cursors.
///
/// This is the identity oracle shared by `csj_serve --populate_compare`,
/// the persist differential gates (`--persist_compare`, crash-injection
/// tests) and the bulk-load tests.
bool CatalogsIdentical(const CommunityCatalog& lhs,
                       const CommunityCatalog& rhs, Epsilon eps,
                       double threshold);

}  // namespace csj::service

#endif  // CSJ_SERVICE_DEEP_COMPARE_H_
