#ifndef CSJ_SERVICE_TOPK_H_
#define CSJ_SERVICE_TOPK_H_

#include <chrono>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/community.h"
#include "core/join_options.h"
#include "core/method.h"
#include "service/catalog.h"

namespace csj::util {
class ThreadPool;
}  // namespace csj::util

namespace csj::service {

/// Deadline for one request, as a steady-clock point. Checked BETWEEN
/// phases (never inside a join): admission -> bound phase -> each refine
/// batch. A request that blows its deadline returns what it has, flagged.
using Deadline = std::chrono::steady_clock::time_point;

struct TopKOptions {
  /// Result size; clamped to >= 1.
  uint32_t k = 10;

  /// Exact method used to refine survivors (the cutoff proof needs
  /// exactness: approximate similarities are not dominated by the bound).
  Method method = Method::kExMinMax;

  /// Join parameters (eps, parts, matcher, cache...). Point `join.cache`
  /// at the catalog's warmup cache to serve from prebuilt encodings.
  JoinOptions join;

  /// The best-bound-first cutoff walk. false refines every admissible
  /// entry — the exhaustive oracle arm the differential test compares
  /// against; results are identical either way, only work differs.
  bool use_bound_cutoff = true;

  /// Exact joins executed per refine wave. Within a wave, joins run as
  /// pool tasks in cost-aware (most-expensive-first) order; between
  /// waves the cutoff re-checks. 0 = auto: the applied thread count, so
  /// a serial query degenerates to the classic one-at-a-time walk with
  /// the tightest possible cutoff. Larger batches trade a few extra
  /// refinements for fewer pool round-trips; results never change.
  uint32_t batch_size = 0;

  /// Threads applied WITHIN this query (bound phase + each refine wave).
  /// 1 = fully inline, no pool interaction — a server running many
  /// concurrent requests gets its parallelism across requests instead.
  uint32_t query_threads = 1;

  /// Pool override; null = ThreadPool::Global().
  util::ThreadPool* pool = nullptr;

  /// Sub-linear candidate generation: sketch the query, sweep the
  /// catalog's SignatureIndex, and feed ONLY the entries whose certified
  /// similarity cap reaches `prescreen_threshold` into the bound+refine
  /// walk above. Results stay byte-identical to the exhaustive scan (see
  /// the fallback contract in docs/API.md): skipped entries are PROVEN
  /// below the threshold, and whenever the refined candidates cannot
  /// certify a full top-k (fewer than k results, or a k-th similarity
  /// below the threshold) the query transparently falls back to the
  /// exhaustive scan. Inert — silently a plain scan — when the catalog
  /// has no signature index or the query is empty.
  bool prescreen = false;

  /// The prescreen admission threshold tau. Larger values skip more of
  /// the catalog but fall back whenever the true k-th similarity lands
  /// below tau; <= 0 admits every entry (prescreen does nothing but add
  /// sweep overhead). 0.10 suits the serving workload's "related
  /// community" regime.
  double prescreen_threshold = 0.10;
};

/// One ranked result: a catalog entry and its EXACT similarity to the
/// query under the auto-ordered couple (smaller side plays B).
struct TopKEntry {
  uint64_t id = 0;
  uint64_t version = 0;
  double similarity = 0.0;

  friend bool operator==(const TopKEntry&, const TopKEntry&) = default;
};

struct TopKQueryStats {
  /// Entries the query was answered against: the snapshot size, or, for
  /// a prescreen query, the index slots examined by the sweep (the whole
  /// resident catalog). After a fallback: the fallback snapshot size.
  uint32_t catalog_entries = 0;
  uint32_t admissible = 0;  ///< couples passing the CSJ size rule
  uint32_t inadmissible = 0;
  uint32_t refined = 0;        ///< exact joins actually executed
  uint32_t bound_skipped = 0;  ///< admissible entries the cutoff pruned
  uint32_t waves = 0;          ///< refine waves executed
  double bound_seconds = 0.0;  ///< wall-clock of the bound phase
  double refine_seconds = 0.0; ///< wall-clock of all refine waves

  /// Prescreen accounting (all zero for scan-mode queries). Invariants
  /// for a prescreen query: prescreen_probed + prescreen_skipped ==
  /// slots examined, and (before any fallback) admissible + inadmissible
  /// == prescreen_probed — the exact phases only ever saw the probed
  /// candidates.
  uint32_t prescreen_probed = 0;   ///< entries admitted to the exact path
  uint32_t prescreen_skipped = 0;  ///< entries the sweep certified away
  /// Whole index packs the sweep dismissed from their coarse summaries
  /// alone (their slots are part of prescreen_skipped).
  uint32_t prescreen_packs_skipped = 0;
  uint32_t fallback = 0;           ///< 1 when the exhaustive fallback ran
  double prescreen_seconds = 0.0;  ///< query sketch + index sweep wall
};

struct TopKResult {
  /// At most k entries, ranked by (similarity desc, id asc) — the total
  /// order the cutoff proof and the differential test are stated in.
  std::vector<TopKEntry> entries;
  TopKQueryStats stats;
  /// The deadline expired between phases; `entries` ranks only what was
  /// refined so far (a valid lower-bound answer, not the exact top-k).
  bool deadline_expired = false;
};

/// The catalog-backed top-k similarity query engine.
///
/// Algorithm (QuerySnapshot): for every snapshot entry, orient the couple
/// by size (smaller side plays B, query wins ties) and drop inadmissible
/// couples; compute SimilarityUpperBound for every admissible couple
/// (batched on the pool); walk candidates in (bound desc, id asc) order,
/// refining in waves and maintaining the current top-k; STOP as soon as
/// the next candidate's bound is strictly below the current k-th
/// similarity with the top-k full.
///
/// Cutoff correctness (the "provably identical" contract): for an exact
/// method, similarity(B, A) <= SimilarityUpperBound(B, A) on the same
/// couple — the bound is the optimum of a relaxation (encoded-window
/// interval matching) of the real candidate graph, and both are divided
/// by the same |B|. Candidates are walked in non-increasing bound order,
/// so when the walk stops at a candidate with bound < kth_similarity,
/// every unrefined candidate c satisfies
///     similarity(c) <= bound(c) <= bound(stop) < kth_similarity,
/// i.e. c ranks strictly below k refined entries under (similarity desc,
/// id asc) and cannot appear in the top-k. Ties are why the stop rule is
/// STRICT: a candidate with bound == kth_similarity could still realize
/// exactly kth_similarity and win the tie on a smaller id, so it must be
/// refined. Hence the returned ranking is byte-identical — same (id,
/// version, similarity) triples, same double bits — to refining every
/// admissible entry and truncating (topk_service_test proves this on
/// hundreds of seeded catalogs).
class TopKSimilarService {
 public:
  /// `catalog` is not owned and must outlive the service.
  explicit TopKSimilarService(const CommunityCatalog* catalog);

  /// Snapshots the catalog and runs QuerySnapshot — or, with
  /// TopKOptions::prescreen on a signature-indexed catalog, probes the
  /// index and runs the same walk on the candidates only (exhaustive
  /// fallback when the candidates cannot certify a full top-k).
  TopKResult Query(const Community& query, const TopKOptions& options,
                   const std::optional<Deadline>& deadline = {}) const;

  /// Runs the query against an explicit snapshot (the server reuses one
  /// snapshot across phases of a request; tests pin synthetic ones).
  TopKResult QuerySnapshot(const Community& query,
                           const std::vector<CatalogEntry>& snapshot,
                           const TopKOptions& options,
                           const std::optional<Deadline>& deadline = {}) const;

 private:
  TopKResult QueryPrescreen(const Community& query,
                            const TopKOptions& options,
                            const std::optional<Deadline>& deadline) const;

  const CommunityCatalog* catalog_;
};

}  // namespace csj::service

#endif  // CSJ_SERVICE_TOPK_H_
