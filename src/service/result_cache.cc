#include "service/result_cache.h"

#include <algorithm>
#include <bit>
#include <utility>

#include "util/logging.h"
#include "util/rng.h"

namespace csj::service {

size_t TopKResultCache::KeyHash::operator()(const ResultCacheKey& key) const {
  // SplitMix64 over the packed fields; the fingerprint already carries
  // the query's entropy, the rest decorrelates same-query variants.
  uint64_t h = key.query_fingerprint;
  h ^= util::SplitMix64(h) ^ key.state_version;
  h ^= util::SplitMix64(h) ^
       ((static_cast<uint64_t>(key.k) << 32) | key.eps);
  h ^= util::SplitMix64(h) ^
       ((static_cast<uint64_t>(key.method) << 16) |
        (static_cast<uint64_t>(key.prescreen) << 8) | key.use_bound_cutoff);
  h ^= util::SplitMix64(h) ^ std::bit_cast<uint64_t>(key.prescreen_threshold);
  return static_cast<size_t>(util::SplitMix64(h));
}

TopKResultCache::TopKResultCache() : TopKResultCache(Options{}) {}

TopKResultCache::TopKResultCache(Options options) : options_(options) {
  options_.shards = std::max(options_.shards, 1u);
  options_.capacity =
      std::max<size_t>(options_.capacity, options_.shards);
  shard_capacity_ = options_.capacity / options_.shards;
  shards_.reserve(options_.shards);
  for (uint32_t s = 0; s < options_.shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

TopKResultCache::Shard& TopKResultCache::ShardOf(const ResultCacheKey& key) {
  // Shard on the query fingerprint alone so one hot query's lifecycle
  // (insert, hits, invalidation) stays on one lock.
  uint64_t state = key.query_fingerprint;
  return *shards_[util::SplitMix64(state) % shards_.size()];
}

TopKResultCache::Ranking TopKResultCache::Lookup(const ResultCacheKey& key) {
  Shard& shard = ShardOf(key);
  Ranking ranking;
  {
    std::lock_guard lock(shard.mu);
    const auto it = shard.rankings.find(key);
    if (it != shard.rankings.end()) ranking = it->second;
  }
  if (ranking != nullptr) {
    hits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
  }
  return ranking;
}

void TopKResultCache::Insert(const ResultCacheKey& key, Ranking ranking) {
  CSJ_CHECK(ranking != nullptr);
  Shard& shard = ShardOf(key);
  uint64_t invalidated = 0;
  uint64_t evicted = 0;
  bool inserted = false;
  {
    std::lock_guard lock(shard.mu);
    if (key.state_version < shard.newest_state) {
      // A ranking computed against an already-superseded state: no future
      // lookup can form its key (the clock is monotonic), so drop it.
    } else {
      if (key.state_version > shard.newest_state) {
        // Everything resident is tagged older — unreachable forever.
        if (!shard.rankings.empty()) {
          invalidated = shard.rankings.size();
          shard.rankings.clear();
          shard.fifo.clear();
        }
        shard.newest_state = key.state_version;
      }
      const auto [it, fresh] =
          shard.rankings.insert_or_assign(key, std::move(ranking));
      inserted = true;
      if (fresh) {
        shard.fifo.push_back(key);
        while (shard.rankings.size() > shard_capacity_ &&
               !shard.fifo.empty()) {
          shard.rankings.erase(shard.fifo.front());
          shard.fifo.pop_front();
          ++evicted;
        }
      }
    }
  }
  if (inserted) insertions_.fetch_add(1, std::memory_order_relaxed);
  if (invalidated > 0) {
    invalidations_.fetch_add(invalidated, std::memory_order_relaxed);
  }
  if (evicted > 0) evictions_.fetch_add(evicted, std::memory_order_relaxed);
}

void TopKResultCache::Clear() {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard lock(shard->mu);
    shard->rankings.clear();
    shard->fifo.clear();
    shard->newest_state = 0;
  }
}

TopKResultCache::Stats TopKResultCache::GetStats() const {
  Stats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.insertions = insertions_.load(std::memory_order_relaxed);
  stats.invalidations = invalidations_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard lock(shard->mu);
    stats.entries += shard->rankings.size();
  }
  return stats;
}

}  // namespace csj::service
