#include "service/server.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"
#include "util/timer.h"

namespace csj::service {

const char* ServeStatusName(ServeStatus status) {
  switch (status) {
    case ServeStatus::kOk: return "ok";
    case ServeStatus::kRejected: return "rejected";
    case ServeStatus::kDeadlineExpired: return "deadline_expired";
    case ServeStatus::kNotFound: return "not_found";
  }
  return "unknown";
}

CsjServer::CsjServer(Options options) : options_(std::move(options)) {
  options_.workers = std::max(options_.workers, 1u);
  catalog_ = std::make_unique<CommunityCatalog>(options_.catalog);
  topk_ = std::make_unique<TopKSimilarService>(catalog_.get());
  queue_ = std::make_unique<BoundedRequestQueue<QueuedRequest>>(
      options_.queue_capacity);
  workers_.reserve(options_.workers);
  for (uint32_t w = 0; w < options_.workers; ++w) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

CsjServer::~CsjServer() { Shutdown(); }

void CsjServer::Shutdown() {
  if (shutdown_.exchange(true, std::memory_order_acq_rel)) return;
  queue_->Close();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
}

bool CsjServer::Submit(ServeRequest request,
                       std::future<ServeResponse>* response) {
  QueuedRequest queued;
  queued.request = std::move(request);
  queued.admitted = std::chrono::steady_clock::now();
  if (queued.request.deadline_seconds > 0.0) {
    queued.deadline =
        queued.admitted + std::chrono::duration_cast<Deadline::duration>(
                              std::chrono::duration<double>(
                                  queued.request.deadline_seconds));
  }
  std::future<ServeResponse> future = queued.promise.get_future();
  if (!queue_->TryPush(std::move(queued))) return false;
  if (response != nullptr) *response = std::move(future);
  return true;
}

ServeResponse CsjServer::SubmitAndWait(ServeRequest request) {
  std::future<ServeResponse> future;
  if (!Submit(std::move(request), &future)) {
    ServeResponse rejected;
    rejected.status = ServeStatus::kRejected;
    return rejected;
  }
  return future.get();
}

void CsjServer::WorkerLoop() {
  while (true) {
    std::optional<QueuedRequest> queued = queue_->Pop();
    if (!queued.has_value()) return;  // closed and drained
    ServeResponse response = Execute(*queued);
    completed_.fetch_add(1, std::memory_order_relaxed);
    if (response.status == ServeStatus::kDeadlineExpired) {
      deadline_expired_.fetch_add(1, std::memory_order_relaxed);
    }
    queued->promise.set_value(std::move(response));
  }
}

ServeResponse CsjServer::Execute(QueuedRequest& queued) {
  const ServeRequest& request = queued.request;
  ServeResponse response;
  response.queue_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    queued.admitted)
          .count();

  // Phase boundary 1: a request that burned its whole budget in the
  // queue is dropped before any join work.
  if (queued.deadline.has_value() &&
      std::chrono::steady_clock::now() >= *queued.deadline) {
    response.status = ServeStatus::kDeadlineExpired;
  } else {
    switch (request.kind) {
      case RequestKind::kTopK: {
        CSJ_CHECK(request.community != nullptr);
        response.topk = topk_->Query(*request.community, request.topk,
                                     queued.deadline);
        response.status = response.topk.deadline_expired
                              ? ServeStatus::kDeadlineExpired
                              : ServeStatus::kOk;
        break;
      }
      case RequestKind::kUpsert: {
        CSJ_CHECK(request.community != nullptr);
        response.version =
            catalog_->Upsert(request.id, Community(*request.community));
        response.status = ServeStatus::kOk;
        break;
      }
      case RequestKind::kRemove: {
        response.status = catalog_->Remove(request.id)
                              ? ServeStatus::kOk
                              : ServeStatus::kNotFound;
        break;
      }
    }
  }

  response.total_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    queued.admitted)
          .count();
  return response;
}

CsjServer::Stats CsjServer::GetStats() const {
  Stats stats;
  stats.accepted = queue_->accepted();
  stats.rejected = queue_->rejected();
  stats.completed = completed_.load(std::memory_order_relaxed);
  stats.deadline_expired = deadline_expired_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace csj::service
