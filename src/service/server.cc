#include "service/server.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/encoding_cache.h"
#include "util/logging.h"
#include "util/timer.h"

namespace csj::service {

namespace {

/// The result-cache identity of one kTopK request at one stable catalog
/// state. Everything that can change the ranking is in the key; the
/// query's identity is its CONTENT fingerprint (same as the encoding
/// cache), so two producers submitting equal communities share hits and a
/// mutated community can never alias a stale entry.
ResultCacheKey MakeResultCacheKey(uint64_t clock_tag,
                                  const ServeRequest& request) {
  ResultCacheKey key;
  key.state_version = clock_tag;
  key.query_fingerprint = DigestCommunity(*request.community).fingerprint;
  key.k = std::max(request.topk.k, 1u);
  key.eps = request.topk.join.eps;
  key.method = static_cast<uint16_t>(request.topk.method);
  key.prescreen = request.topk.prescreen ? 1 : 0;
  key.use_bound_cutoff = request.topk.use_bound_cutoff ? 1 : 0;
  key.prescreen_threshold = request.topk.prescreen_threshold;
  return key;
}

}  // namespace

const char* ServeStatusName(ServeStatus status) {
  switch (status) {
    case ServeStatus::kOk: return "ok";
    case ServeStatus::kRejected: return "rejected";
    case ServeStatus::kDeadlineExpired: return "deadline_expired";
    case ServeStatus::kNotFound: return "not_found";
  }
  return "unknown";
}

CsjServer::CsjServer(Options options) : options_(std::move(options)) {
  options_.workers = std::max(options_.workers, 1u);
  catalog_ = std::make_unique<CommunityCatalog>(options_.catalog);
  topk_ = std::make_unique<TopKSimilarService>(catalog_.get());
  if (options_.result_cache) {
    cache_ = std::make_unique<TopKResultCache>(options_.result_cache_options);
  }
  queue_ = std::make_unique<BoundedRequestQueue<QueuedRequest>>(
      options_.queue_capacity);
  workers_.reserve(options_.workers);
  for (uint32_t w = 0; w < options_.workers; ++w) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

CsjServer::~CsjServer() { Shutdown(); }

void CsjServer::Shutdown() {
  if (shutdown_.exchange(true, std::memory_order_acq_rel)) return;
  queue_->Close();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
}

bool CsjServer::Enqueue(QueuedRequest queued) {
  queued.admitted = std::chrono::steady_clock::now();
  if (queued.request.deadline_seconds > 0.0) {
    queued.deadline =
        queued.admitted + std::chrono::duration_cast<Deadline::duration>(
                              std::chrono::duration<double>(
                                  queued.request.deadline_seconds));
  }
  const std::optional<Deadline> deadline = queued.deadline;
  return queue_->TryPush(std::move(queued), deadline);
}

bool CsjServer::Submit(ServeRequest request,
                       std::future<ServeResponse>* response) {
  QueuedRequest queued;
  queued.request = std::move(request);
  std::future<ServeResponse> future = queued.promise.get_future();
  if (!Enqueue(std::move(queued))) return false;
  if (response != nullptr) *response = std::move(future);
  return true;
}

bool CsjServer::Submit(ServeRequest request,
                       std::function<void(ServeResponse)> done) {
  CSJ_CHECK(done != nullptr);
  QueuedRequest queued;
  queued.request = std::move(request);
  queued.callback = std::move(done);
  return Enqueue(std::move(queued));
}

ServeResponse CsjServer::SubmitAndWait(ServeRequest request) {
  std::future<ServeResponse> future;
  if (!Submit(std::move(request), &future)) {
    ServeResponse rejected;
    rejected.status = ServeStatus::kRejected;
    return rejected;
  }
  return future.get();
}

void CsjServer::WorkerLoop() {
  while (true) {
    std::optional<QueuedRequest> queued = queue_->Pop();
    if (!queued.has_value()) return;  // closed and drained
    ServeResponse response = Execute(*queued);
    response.sequence = sequence_.fetch_add(1, std::memory_order_relaxed) + 1;
    completed_.fetch_add(1, std::memory_order_relaxed);
    if (response.status == ServeStatus::kDeadlineExpired) {
      deadline_expired_.fetch_add(1, std::memory_order_relaxed);
    }
    RecordLatency(response.status, response.total_seconds);
    if (queued->callback != nullptr) {
      queued->callback(std::move(response));
    } else {
      queued->promise.set_value(std::move(response));
    }
  }
}

TopKResult CsjServer::QueryStableScan(
    const Community& query, const TopKOptions& options,
    const std::optional<Deadline>& deadline, bool stable,
    uint64_t clock_tag) {
  // The prescreen path probes the signature index instead of
  // snapshotting; snapshot sharing only applies to scan-mode queries
  // (same inertness conditions as TopKSimilarService::Query).
  if (options.prescreen && catalog_->signature_options() != nullptr &&
      !query.empty()) {
    return topk_->Query(query, options, deadline);
  }
  std::shared_ptr<const std::vector<CatalogEntry>> snapshot;
  if (stable) {
    std::lock_guard lock(snapshot_mu_);
    if (snapshot_tag_ == clock_tag && snapshot_ != nullptr) {
      snapshot = snapshot_;
    }
  }
  if (snapshot != nullptr) {
    snapshot_reuses_.fetch_add(1, std::memory_order_relaxed);
  } else {
    snapshot = std::make_shared<const std::vector<CatalogEntry>>(
        catalog_->Snapshot());
    // Publish for reuse only when the snapshot provably captured the
    // stable state `clock_tag` (no mutation began while we built it).
    if (stable && catalog_->mutations_started() == clock_tag) {
      std::lock_guard lock(snapshot_mu_);
      snapshot_tag_ = clock_tag;
      snapshot_ = snapshot;
    }
  }
  return topk_->QuerySnapshot(query, *snapshot, options, deadline);
}

void CsjServer::ExecuteTopK(const QueuedRequest& queued,
                            ServeResponse* response) {
  const ServeRequest& request = queued.request;

  // Stability probe (see catalog.h): f1 == started means the catalog is
  // quiescent at clock tag f1 right now; only then can a cached ranking
  // be named, looked up, or installed.
  const uint64_t clock_tag = catalog_->mutations_finished();
  const bool stable = catalog_->mutations_started() == clock_tag;

  ResultCacheKey key;
  if (cache_ != nullptr && stable) {
    key = MakeResultCacheKey(clock_tag, request);
    if (TopKResultCache::Ranking hit = cache_->Lookup(key)) {
      // Hit: the tag still matching `started` (checked when `stable` was
      // computed) proves the catalog state is bit-identical to the one
      // the ranking was computed against; serving it IS recomputing it.
      response->topk.entries = *hit;
      response->status = ServeStatus::kOk;
      response->cache_hit = true;
      response->state_version = clock_tag;
      return;
    }
  }
  if (cache_ != nullptr && !stable) {
    cache_bypasses_.fetch_add(1, std::memory_order_relaxed);
  }

  response->topk = QueryStableScan(*request.community, request.topk,
                                   queued.deadline, stable, clock_tag);
  response->status = response->topk.deadline_expired
                         ? ServeStatus::kDeadlineExpired
                         : ServeStatus::kOk;

  // Install on the way out: complete rankings only (a deadline partial is
  // not THE answer at this state), and only when no mutation started
  // while we computed — otherwise the result may straddle two states and
  // must not be named by either.
  if (cache_ != nullptr && stable &&
      response->status == ServeStatus::kOk) {
    if (catalog_->mutations_started() == clock_tag) {
      response->state_version = clock_tag;
      cache_->Insert(key,
                     std::make_shared<const std::vector<TopKEntry>>(
                         response->topk.entries));
    }
  } else if (stable && catalog_->mutations_started() == clock_tag &&
             response->status == ServeStatus::kOk) {
    response->state_version = clock_tag;
  }
}

ServeResponse CsjServer::Execute(QueuedRequest& queued) {
  const ServeRequest& request = queued.request;
  ServeResponse response;
  response.queue_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    queued.admitted)
          .count();

  // Phase boundary 1: a request that burned its whole budget in the
  // queue is dropped before any join work.
  if (queued.deadline.has_value() &&
      std::chrono::steady_clock::now() >= *queued.deadline) {
    response.status = ServeStatus::kDeadlineExpired;
  } else {
    switch (request.kind) {
      case RequestKind::kTopK: {
        CSJ_CHECK(request.community != nullptr);
        ExecuteTopK(queued, &response);
        break;
      }
      case RequestKind::kUpsert: {
        CSJ_CHECK(request.community != nullptr);
        response.version =
            catalog_->Upsert(request.id, Community(*request.community));
        response.status = ServeStatus::kOk;
        break;
      }
      case RequestKind::kRemove: {
        response.status = catalog_->Remove(request.id)
                              ? ServeStatus::kOk
                              : ServeStatus::kNotFound;
        break;
      }
    }
  }

  response.total_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    queued.admitted)
          .count();
  return response;
}

void CsjServer::RecordLatency(ServeStatus status, double seconds) {
  LatencyRecorder& recorder = latency_[static_cast<uint8_t>(status)];
  const double ms = std::max(seconds * 1e3, 1e-4);
  std::lock_guard lock(recorder.mu);
  recorder.log_ms.Add(std::log10(ms));
  recorder.max_ms = std::max(recorder.max_ms, ms);
  ++recorder.count;
}

CsjServer::StatusLatency CsjServer::LatencyOf(ServeStatus status) const {
  const LatencyRecorder& recorder = latency_[static_cast<uint8_t>(status)];
  StatusLatency latency;
  std::lock_guard lock(recorder.mu);
  latency.count = recorder.count;
  if (recorder.count == 0) return latency;
  latency.p50_ms = std::pow(10.0, recorder.log_ms.Quantile(0.50));
  latency.p95_ms = std::pow(10.0, recorder.log_ms.Quantile(0.95));
  latency.p99_ms = std::pow(10.0, recorder.log_ms.Quantile(0.99));
  latency.max_ms = recorder.max_ms;
  return latency;
}

CsjServer::Stats CsjServer::GetStats() const {
  Stats stats;
  stats.accepted = queue_->accepted();
  stats.rejected = queue_->rejected();
  stats.completed = completed_.load(std::memory_order_relaxed);
  stats.deadline_expired = deadline_expired_.load(std::memory_order_relaxed);
  stats.queue_high_water = queue_->high_water();
  stats.snapshot_reuses = snapshot_reuses_.load(std::memory_order_relaxed);
  stats.cache_bypasses = cache_bypasses_.load(std::memory_order_relaxed);
  if (cache_ != nullptr) stats.result_cache = cache_->GetStats();
  return stats;
}

}  // namespace csj::service
