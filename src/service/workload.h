#ifndef CSJ_SERVICE_WORKLOAD_H_
#define CSJ_SERVICE_WORKLOAD_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/community.h"
#include "core/types.h"
#include "service/server.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace csj::service {

/// Recipe for a seeded serving workload: a catalog of VK-like brand
/// communities clustered so top-k queries have genuine winners, plus a
/// request mix (reads with uniform or zipf-skewed query popularity,
/// upsert/remove churn) replayed deterministically from one seed.
struct WorkloadOptions {
  uint32_t catalog_size = 24;     ///< seeded catalog entries (ids 1..N)
  uint32_t community_size = 150;  ///< mean users per community
  /// Entry sizes are drawn uniformly in community_size * [1-jitter,
  /// 1+jitter] so the size-admissibility rule and the cost-aware
  /// scheduler both see real variety.
  double size_jitter = 0.25;
  /// Every `cluster_size`-th entry anchors a cluster; the rest are
  /// planted against their cluster's anchor in the [plant_lo, plant_hi]
  /// similarity band (defaults: the paper's 15-35% "similar enough"
  /// band), so a query drawn from the pool has a non-trivial exact
  /// top-k. Large-catalog prescreen scenarios raise both: wide clusters
  /// planted at 50-80% keep every member's top-k filled well above the
  /// prescreen threshold, so candidate generation is the thing measured,
  /// not fallback churn.
  uint32_t cluster_size = 3;
  double plant_lo = 0.15;
  double plant_hi = 0.35;
  Epsilon eps = 1;
  /// Request mix: fractions of upserts (install a fresh community over a
  /// random id) and removes; the rest are top-k reads.
  double upsert_fraction = 0.05;
  double remove_fraction = 0.0;
  /// Query popularity: 0 = uniform over the pool; > 0 = zipf-skewed
  /// (rank 0 hottest), modeling the few brands everyone compares against.
  double zipf_s = 0.0;
  /// Deadline copied onto every generated request (0 = none).
  double deadline_seconds = 0.0;
  uint64_t seed = 42;
};

/// Builds the seeded communities once, then mints requests on demand.
///
/// Construction is parallel (anchors, then members, on the global pool)
/// and bit-reproducible at any thread count: each community's generator
/// is forked from the workload seed by index, so community i is the same
/// bytes whether 1 or 64 threads built the catalog.
///
/// Thread-safety: the workload is immutable after construction;
/// NextRequest touches only the caller's Rng and local state, so N
/// closed-loop client threads each fork a child Rng and mint requests
/// concurrently (same seed => same multiset of requests, regardless of
/// client interleaving).
class ServeWorkload {
 public:
  explicit ServeWorkload(const WorkloadOptions& options);

  /// The seeded catalog entries, in id order (ids 1..catalog_size).
  const std::vector<std::shared_ptr<const Community>>& communities() const {
    return communities_;
  }

  /// Indices (0-based, into communities()) of the cluster anchors.
  const std::vector<uint32_t>& anchors() const { return anchors_; }

  /// Mints a fresh community planted against a seeded cluster anchor —
  /// the same recipe the upsert mix installs, exposed so the evolution
  /// subsystem can seed community BIRTHS from the identical
  /// distribution. When `anchor_id` is non-null it receives the chosen
  /// anchor's catalog id (anchor index + 1), which the drift model uses
  /// to attach the newborn's live anchor session.
  std::shared_ptr<const Community> MintAgainstAnchor(
      util::Rng& rng, uint64_t* anchor_id = nullptr) const;

  /// Per-phase populate accounting (BulkLoad phases are zero for the
  /// sequential arm, which has no phase boundaries to time).
  struct PopulateStats {
    bool bulk = false;
    uint32_t entries = 0;
    double total_seconds = 0.0;
    double encode_seconds = 0.0;
    double sketch_seconds = 0.0;
    double install_seconds = 0.0;
    double entries_per_sec = 0.0;
  };

  /// Installs the seeded entries into `server` (id i+1 <- communities()[i])
  /// through CommunityCatalog::BulkLoad — byte-identical end state to the
  /// sequential arm below, at a fraction of the per-entry cost.
  void Populate(CsjServer* server, PopulateStats* stats = nullptr) const;

  /// The per-entry Upsert reference arm (what Populate did before bulk
  /// ingestion existed). Kept callable for the bulk-vs-sequential
  /// identity gates and the populate speedup benchmark.
  void PopulateSequential(CsjServer* server,
                          PopulateStats* stats = nullptr) const;

  /// Mints the next request of the mix. `topk_template` supplies the
  /// read-side parameters (k, method, join options — point join.cache at
  /// the serving cache); the workload fills kind, id, community and
  /// deadline.
  ServeRequest NextRequest(util::Rng& rng,
                           const TopKOptions& topk_template) const;

 private:
  /// A fresh churn community planted against a random anchor (what an
  /// upsert installs).
  std::shared_ptr<const Community> MintCommunity(util::Rng& rng) const;

  WorkloadOptions options_;
  std::vector<std::shared_ptr<const Community>> communities_;
  std::vector<uint32_t> anchors_;  ///< indices of the cluster anchors
  util::ZipfDistribution popularity_;
};

}  // namespace csj::service

#endif  // CSJ_SERVICE_WORKLOAD_H_
