#include "service/catalog.h"

#include <algorithm>
#include <utility>

#include "core/encoding.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace csj::service {

LiveCoupleSession::LiveCoupleSession(const CommunityCatalog* catalog,
                                     CatalogEntry entry,
                                     const JoinOptions& join)
    : catalog_(catalog),
      entry_(std::move(entry)),
      live_(*entry_.community, join) {}

bool LiveCoupleSession::Stale() const {
  const CatalogEntry current = catalog_->Get(entry_.id);
  return current.community == nullptr || current.version != entry_.version;
}

CommunityCatalog::CommunityCatalog() : CommunityCatalog(Options{}) {}

CommunityCatalog::CommunityCatalog(Options options) : options_(options) {
  options_.shards = std::max(options_.shards, 1u);
  shards_ = std::vector<Shard>(options_.shards);
  if (options_.signatures.has_value()) {
    signature_index_ = std::make_unique<SignatureIndex>(
        options_.shards, *options_.signatures);
  }
  if (options_.mutation_log_capacity > 0) {
    mutation_log_ = std::make_unique<MutationLog>();
  }
}

void CommunityCatalog::AppendMutation(uint64_t id, uint64_t version,
                                      bool remove) {
  MutationLog& log = *mutation_log_;
  std::lock_guard lock(log.mu);
  log.records.push_back({log.next_seq++, id, version, remove});
  while (log.records.size() > options_.mutation_log_capacity) {
    log.records.pop_front();
    ++log.first_seq;
  }
}

uint64_t CommunityCatalog::mutation_seq() const {
  if (mutation_log_ == nullptr) return 0;
  std::lock_guard lock(mutation_log_->mu);
  return mutation_log_->next_seq - 1;
}

bool CommunityCatalog::ReadMutationsSince(
    uint64_t cursor, std::vector<MutationRecord>* out) const {
  if (mutation_log_ == nullptr) return false;
  MutationLog& log = *mutation_log_;
  std::lock_guard lock(log.mu);
  // A consumer is in sync iff no record in (cursor, next_seq) has been
  // truncated. With a dense deque that means cursor >= first_seq - 1.
  if (cursor + 1 < log.first_seq) return false;
  const uint64_t last = log.next_seq - 1;
  if (cursor >= last) return true;  // nothing new
  // Dense seqs make the suffix a direct index: records[i].seq ==
  // first_seq + i.
  const auto begin = static_cast<std::ptrdiff_t>(cursor + 1 - log.first_seq);
  out->insert(out->end(), log.records.begin() + begin, log.records.end());
  return true;
}

uint32_t CommunityCatalog::ShardIndexOf(uint64_t id) const {
  // Mix before reducing so dense sequential ids (the common assignment
  // scheme) and strided ids both spread over the shards.
  uint64_t state = id;
  return static_cast<uint32_t>(util::SplitMix64(state) % shards_.size());
}

const CommunityCatalog::Shard& CommunityCatalog::ShardOf(uint64_t id) const {
  return shards_[ShardIndexOf(id)];
}

CommunityCatalog::Shard& CommunityCatalog::ShardOf(uint64_t id) {
  return const_cast<Shard&>(
      static_cast<const CommunityCatalog*>(this)->ShardOf(id));
}

uint64_t CommunityCatalog::Upsert(uint64_t id, Community community) {
  CSJ_CHECK(!community.empty()) << "catalog entries must be non-empty";
  // Freeze, digest and warm OUTSIDE any lock: digesting is O(n*d) and a
  // cache build sorts the whole community — holding a shard lock across
  // either would stall every reader of the shard.
  CatalogEntry entry;
  entry.id = id;
  entry.community = std::make_shared<const Community>(std::move(community));
  entry.digest = DigestCommunity(*entry.community);
  if (options_.cache != nullptr) {
    // Key on the CLAMPED part count, exactly as the join methods do, so
    // the first query's lookups are hits, not parallel builds.
    const Encoder encoder(entry.community->d(), options_.warm_eps,
                          options_.warm_parts);
    options_.cache->GetEncodedB(*entry.community, entry.digest,
                                options_.warm_eps, encoder.parts(), nullptr);
    options_.cache->GetEncodedA(*entry.community, entry.digest,
                                options_.warm_eps, encoder.parts(), nullptr);
    options_.cache->GetCommunityWindow(*entry.community, entry.digest,
                                       nullptr);
  }
  if (signature_index_ != nullptr) {
    // Sketch building sorts every counter column — also too expensive to
    // run under the shard lock.
    entry.signature = std::make_shared<const CommunitySignature>(
        *entry.community, signature_index_->options());
  }
  entry.version = next_version_.fetch_add(1, std::memory_order_acq_rel);
  const uint32_t shard_index = ShardIndexOf(id);
  Shard& shard = shards_[shard_index];
  // Mutation clock: `started` ticks BEFORE the install is visible to any
  // reader, `finished` after it is complete — the expensive lock-free
  // pre-work above changes no catalog state, so it stays outside the
  // started/finished window and tagged readers are not invalidated by it.
  mutations_started_.fetch_add(1, std::memory_order_acq_rel);
  {
    std::unique_lock lock(shard.mu);
    shard.entries[id] = entry;
    // Entry map and sketch store commit in one critical section, so a
    // probe (under the shared lock) always sees them in agreement.
    if (signature_index_ != nullptr) {
      signature_index_->Install(shard_index, id, entry.version,
                                entry.signature);
    }
    // Logged inside the critical section so the log's per-id order can
    // never contradict the install order readers observe.
    if (mutation_log_ != nullptr) {
      AppendMutation(id, entry.version, /*remove=*/false);
    }
    // The durable-log seam observes the same ordering point.
    if (mutation_sink_) {
      mutation_sink_({id, entry.version, /*remove=*/false, entry.community});
    }
  }
  mutations_finished_.fetch_add(1, std::memory_order_acq_rel);
  upserts_.fetch_add(1, std::memory_order_relaxed);
  return entry.version;
}

uint64_t CommunityCatalog::BulkLoad(
    std::vector<std::pair<uint64_t, Community>> batch, BulkLoadStats* stats) {
  std::vector<std::pair<uint64_t, std::shared_ptr<const Community>>> frozen;
  frozen.reserve(batch.size());
  for (auto& [id, community] : batch) {
    frozen.emplace_back(
        id, std::make_shared<const Community>(std::move(community)));
  }
  return BulkLoad(std::move(frozen), stats);
}

uint64_t CommunityCatalog::BulkLoad(
    std::vector<std::pair<uint64_t, std::shared_ptr<const Community>>> batch,
    BulkLoadStats* stats) {
  if (stats != nullptr) *stats = BulkLoadStats{};
  const uint32_t n = static_cast<uint32_t>(batch.size());
  if (n == 0) return 0;
  if (stats != nullptr) stats->entries = n;
  for (const auto& [id, community] : batch) {
    CSJ_CHECK(community != nullptr && !community->empty())
        << "catalog entries must be non-empty";
  }

  // Reserve the whole version block up front: element i gets base + i,
  // exactly the version a sequential Upsert loop would have issued (and
  // concurrent Upserts slot before or after the block, never inside it).
  const uint64_t base =
      next_version_.fetch_add(n, std::memory_order_acq_rel);

  util::ThreadPool& pool = util::ThreadPool::Global();
  std::vector<CatalogEntry> entries(n);

  // Three warm artifacts land in the cache per entry; pre-sizing its
  // shard tables once removes every incremental rehash from the waves.
  if (options_.cache != nullptr) {
    options_.cache->Reserve(static_cast<size_t>(n) * 3);
  }

  // The encode and sketch waves read the same counter buffers, so they
  // run in cache-sized chunks: at catalog scale a full-batch wave 2
  // would find every community long since evicted and re-stream the
  // whole catalog from DRAM, while a ~9 MB chunk is still LLC-resident
  // from wave 1. Phase timers accumulate across chunks.
  constexpr uint32_t kWaveChunk = 2048;
  double encode_seconds = 0.0;
  double sketch_seconds = 0.0;
  util::Timer phase_timer;
  for (uint32_t chunk = 0; chunk < n; chunk += kWaveChunk) {
    const uint32_t count = std::min(kWaveChunk, n - chunk);

    // Wave 1 — adopt the frozen buffers, digest, warm the encoding
    // cache. The warm artifacts are built directly and bulk-inserted
    // (EncodingCache::Put*): the batch has no duplicate keys to dedup,
    // so GetOrBuild's promise/future machinery would be pure overhead
    // here (measured at ~half the warmup cost per entry).
    phase_timer.Reset();
    pool.Run(count, [&](uint32_t t) {
      const uint32_t i = chunk + t;
      CatalogEntry& entry = entries[i];
      entry.id = batch[i].first;
      entry.version = base + i;
      entry.community = std::move(batch[i].second);
      // Stream the next entry's counters toward the cache while this
      // entry is encoded: the digest is each buffer's first touch since
      // the generator built it, and with ~20 KB of artifact traffic
      // between touches the hardware prefetcher never re-arms, leaving
      // that first walk latency-bound (measured ~3x slower than the
      // prefetched walk). Knowing the next community is a batch-only
      // luxury the per-entry Upsert path has no equivalent of.
      if (i + 1 < n && batch[i + 1].second != nullptr) {
        const auto next = batch[i + 1].second->flat();
        for (size_t b = 0; b < next.size(); b += 16) {
          __builtin_prefetch(&next[b]);
        }
      }
      entry.digest = DigestCommunity(*entry.community);
      if (options_.cache != nullptr) {
        // Batches are near-always one dimensionality, so the encoder
        // (whose constructor allocates its part-boundary table) is
        // memoized per thread instead of rebuilt per entry. The memo
        // keys on the raw construction parameters: the thread_local
        // outlives this BulkLoad and must not leak across catalogs
        // configured with different warm options.
        struct EncoderMemo {
          std::unique_ptr<Encoder> encoder;
          Dim d = 0;
          Epsilon eps = 0;
          uint32_t parts = 0;
        };
        thread_local EncoderMemo memo;
        if (memo.encoder == nullptr || memo.d != entry.community->d() ||
            memo.eps != options_.warm_eps ||
            memo.parts != options_.warm_parts) {
          memo.encoder = std::make_unique<Encoder>(
              entry.community->d(), options_.warm_eps, options_.warm_parts);
          memo.d = entry.community->d();
          memo.eps = options_.warm_eps;
          memo.parts = options_.warm_parts;
        }
        const Encoder& encoder = *memo.encoder;
        options_.cache->PutEncodedB(
            entry.digest, options_.warm_eps, encoder.parts(),
            std::make_shared<const EncodedB>(*entry.community, encoder));
        options_.cache->PutEncodedA(
            entry.digest, options_.warm_eps, encoder.parts(),
            std::make_shared<const EncodedA>(*entry.community, encoder));
        auto window = std::make_shared<VerifyWindow>();
        window->Assign(entry.community->size(), entry.community->d(),
                       [&](uint32_t u) { return entry.community->User(u); });
        options_.cache->PutCommunityWindow(entry.digest, std::move(window));
      }
    });
    encode_seconds += phase_timer.Seconds();

    // Wave 2 — sketches through the scratch-reusing fast builder
    // (byte-identical to the reference constructor Upsert uses). The
    // digest's exact max counter feeds the radix key width, saving the
    // builder its own max-scan pass.
    phase_timer.Reset();
    if (signature_index_ != nullptr) {
      pool.Run(count, [&](uint32_t t) {
        const uint32_t i = chunk + t;
        // Same next-entry stream prefetch as wave 1: the chunk keeps
        // these buffers LLC-resident, but the artifact writes between
        // touches still de-arm the hardware prefetcher.
        if (i + 1 < n && entries[i + 1].community != nullptr) {
          const auto next = entries[i + 1].community->flat();
          for (size_t b = 0; b < next.size(); b += 16) {
            __builtin_prefetch(&next[b]);
          }
        }
        thread_local SketchScratch scratch;
        entries[i].signature = std::make_shared<const CommunitySignature>(
            *entries[i].community, signature_index_->options(), &scratch,
            entries[i].digest.max_counter);
      });
    }
    sketch_seconds += phase_timer.Seconds();
  }
  if (stats != nullptr) {
    stats->encode_seconds = encode_seconds;
    stats->sketch_seconds = sketch_seconds;
  }

  // Install — group elements by shard (batch order preserved within a
  // shard, so duplicate ids replay with last-wins semantics), then one
  // exclusive lock + one batched index install per shard. Each shard's
  // install is bracketed by its own mutation-clock tick: every completed
  // shard flip is a stable state for tagged readers.
  phase_timer.Reset();
  std::vector<std::vector<uint32_t>> by_shard(shards_.size());
  for (auto& members : by_shard) {
    members.reserve(n / shards_.size() + n / (4 * shards_.size()) + 8);
  }
  for (uint32_t i = 0; i < n; ++i) {
    by_shard[ShardIndexOf(entries[i].id)].push_back(i);
  }
  std::vector<SignatureIndex::SlotInstall> installs;
  for (uint32_t shard_index = 0; shard_index < shards_.size();
       ++shard_index) {
    const std::vector<uint32_t>& members = by_shard[shard_index];
    if (members.empty()) continue;
    Shard& shard = shards_[shard_index];
    if (signature_index_ != nullptr) {
      installs.clear();
      installs.reserve(members.size());
      for (const uint32_t i : members) {
        installs.push_back(
            {entries[i].id, entries[i].version, entries[i].signature});
      }
    }
    mutations_started_.fetch_add(1, std::memory_order_acq_rel);
    {
      std::unique_lock lock(shard.mu);
      // Sink first, in member (= batch) order, while the entries still
      // hold their community pointers — the move loop below strips them.
      // Same critical section, so sink order still equals install order.
      if (mutation_sink_) {
        for (const uint32_t i : members) {
          mutation_sink_({entries[i].id, entries[i].version,
                          /*remove=*/false, entries[i].community});
        }
      }
      for (const uint32_t i : members) {
        // Entries are single-use here: moving skips three shared_ptr
        // refcount round-trips per element. (Duplicate ids overwrite in
        // batch order — last wins, as a sequential Upsert replay would.)
        // The end hint makes each insert O(1) for the common ascending-id
        // batch; out-of-order ids just fall back to a plain tree insert.
        const uint64_t id = entries[i].id;
        shard.entries.insert_or_assign(shard.entries.end(), id,
                                       std::move(entries[i]));
      }
      if (signature_index_ != nullptr) {
        signature_index_->InstallBatch(shard_index, installs);
      }
      if (mutation_log_ != nullptr) {
        // Member order within the shard is batch order, so for any one
        // id the log replays the same last-wins sequence the entry map
        // applied. (The install loop over shards is serial, so the
        // whole-batch log order is deterministic too.)
        for (const uint32_t i : members) {
          AppendMutation(entries[i].id, entries[i].version,
                         /*remove=*/false);
        }
      }
    }
    mutations_finished_.fetch_add(1, std::memory_order_acq_rel);
  }
  if (stats != nullptr) stats->install_seconds = phase_timer.Seconds();
  upserts_.fetch_add(n, std::memory_order_relaxed);
  return base + n - 1;
}

uint64_t CommunityCatalog::RestoreBatch(std::vector<RestoredEntry> batch,
                                        uint64_t next_version,
                                        BulkLoadStats* stats) {
  if (stats != nullptr) *stats = BulkLoadStats{};
  const uint32_t n = static_cast<uint32_t>(batch.size());
  if (stats != nullptr) stats->entries = n;
  for (const RestoredEntry& entry : batch) {
    CSJ_CHECK(entry.community != nullptr && !entry.community->empty())
        << "catalog entries must be non-empty";
    CSJ_CHECK_GE(entry.version, 1u);
    CSJ_CHECK_LT(entry.version, next_version)
        << "restored version outside the recovered version horizon";
  }
  CSJ_CHECK_GE(next_version, 1u);

  util::ThreadPool& pool = util::ThreadPool::Global();
  std::vector<CatalogEntry> entries(n);
  if (options_.cache != nullptr) {
    options_.cache->Reserve(static_cast<size_t>(n) * 3);
  }

  // One wave, not BulkLoad's two: the common restore has every derived
  // artifact already reconstructed (zero-copy views over the mapped
  // segment), so per entry this is three cache inserts and two
  // shared_ptr adoptions. Only log-tail entries — whose artifacts were
  // never checkpointed — pay a build, through the exact builders Upsert
  // uses, so the recovered bytes match what the writer held.
  util::Timer phase_timer;
  if (signature_index_ != nullptr || options_.cache != nullptr || n > 0) {
    pool.Run(n, [&](uint32_t i) {
      RestoredEntry& restored = batch[i];
      CatalogEntry& entry = entries[i];
      entry.id = restored.id;
      entry.version = restored.version;
      entry.community = std::move(restored.community);
      entry.digest = restored.digest;
      if (options_.cache != nullptr) {
        const Encoder encoder(entry.community->d(), options_.warm_eps,
                              options_.warm_parts);
        std::shared_ptr<const EncodedB> encoded_b =
            std::move(restored.encoded_b);
        if (encoded_b == nullptr) {
          encoded_b =
              std::make_shared<const EncodedB>(*entry.community, encoder);
        }
        std::shared_ptr<const EncodedA> encoded_a =
            std::move(restored.encoded_a);
        if (encoded_a == nullptr) {
          encoded_a =
              std::make_shared<const EncodedA>(*entry.community, encoder);
        }
        std::shared_ptr<const VerifyWindow> window = std::move(restored.window);
        if (window == nullptr) {
          auto built = std::make_shared<VerifyWindow>();
          built->Assign(entry.community->size(), entry.community->d(),
                        [&](uint32_t u) { return entry.community->User(u); });
          window = std::move(built);
        }
        options_.cache->PutEncodedB(entry.digest, options_.warm_eps,
                                    encoder.parts(), std::move(encoded_b));
        options_.cache->PutEncodedA(entry.digest, options_.warm_eps,
                                    encoder.parts(), std::move(encoded_a));
        options_.cache->PutCommunityWindow(entry.digest, std::move(window));
      }
      if (signature_index_ != nullptr) {
        entry.signature = std::move(restored.signature);
        if (entry.signature == nullptr) {
          thread_local SketchScratch scratch;
          entry.signature = std::make_shared<const CommunitySignature>(
              *entry.community, signature_index_->options(), &scratch,
              entry.digest.max_counter);
        }
      }
    });
  }
  if (stats != nullptr) stats->encode_seconds = phase_timer.Seconds();

  // Install exactly as BulkLoad does — per-shard exclusive sections in
  // batch order — so the recovered index pack layout replays the
  // writer's install history. No journal append and no sink: a restore
  // replays durable history, it does not create any.
  phase_timer.Reset();
  std::vector<std::vector<uint32_t>> by_shard(shards_.size());
  for (uint32_t i = 0; i < n; ++i) {
    by_shard[ShardIndexOf(entries[i].id)].push_back(i);
  }
  std::vector<SignatureIndex::SlotInstall> installs;
  for (uint32_t shard_index = 0; shard_index < shards_.size();
       ++shard_index) {
    const std::vector<uint32_t>& members = by_shard[shard_index];
    if (members.empty()) continue;
    Shard& shard = shards_[shard_index];
    if (signature_index_ != nullptr) {
      installs.clear();
      installs.reserve(members.size());
      for (const uint32_t i : members) {
        installs.push_back(
            {entries[i].id, entries[i].version, entries[i].signature});
      }
    }
    mutations_started_.fetch_add(1, std::memory_order_acq_rel);
    {
      std::unique_lock lock(shard.mu);
      for (const uint32_t i : members) {
        const uint64_t id = entries[i].id;
        shard.entries.insert_or_assign(shard.entries.end(), id,
                                       std::move(entries[i]));
      }
      if (signature_index_ != nullptr) {
        signature_index_->InstallBatch(shard_index, installs);
      }
    }
    mutations_finished_.fetch_add(1, std::memory_order_acq_rel);
  }
  if (stats != nullptr) stats->install_seconds = phase_timer.Seconds();

  // Resume the writer's version sequence. fetch_max semantics: restore
  // only ever runs on a fresh catalog, but stay monotone regardless.
  uint64_t current = next_version_.load(std::memory_order_acquire);
  while (current < next_version &&
         !next_version_.compare_exchange_weak(current, next_version,
                                              std::memory_order_acq_rel)) {
  }
  upserts_.fetch_add(n, std::memory_order_relaxed);
  return n == 0 ? 0 : next_version - 1;
}

bool CommunityCatalog::Remove(uint64_t id) {
  const uint32_t shard_index = ShardIndexOf(id);
  Shard& shard = shards_[shard_index];
  bool removed = false;
  // The clock must tick before we can know whether the id is resident, so
  // a Remove of an absent id ticks too: a spurious invalidation for
  // tagged readers, never a missed one.
  mutations_started_.fetch_add(1, std::memory_order_acq_rel);
  {
    std::unique_lock lock(shard.mu);
    removed = shard.entries.erase(id) > 0;
    if (removed && signature_index_ != nullptr) {
      signature_index_->Remove(shard_index, id);
    }
    // Only a remove that actually erased something is logged: a Remove
    // of an absent id changes no observable state for log consumers.
    if (removed && mutation_log_ != nullptr) {
      AppendMutation(id, /*version=*/0, /*remove=*/true);
    }
    if (removed && mutation_sink_) {
      mutation_sink_({id, /*version=*/0, /*remove=*/true, nullptr});
    }
  }
  mutations_finished_.fetch_add(1, std::memory_order_acq_rel);
  if (removed) removes_.fetch_add(1, std::memory_order_relaxed);
  return removed;
}

CatalogEntry CommunityCatalog::Get(uint64_t id) const {
  const Shard& shard = ShardOf(id);
  std::shared_lock lock(shard.mu);
  const auto it = shard.entries.find(id);
  return it == shard.entries.end() ? CatalogEntry{} : it->second;
}

std::vector<CatalogEntry> CommunityCatalog::Snapshot() const {
  std::vector<CatalogEntry> snapshot;
  for (const Shard& shard : shards_) {
    std::shared_lock lock(shard.mu);
    for (const auto& [id, entry] : shard.entries) snapshot.push_back(entry);
  }
  // Shards partition ids by hash, so the concatenation is ordered within
  // a shard but not globally; one sort restores the deterministic
  // ascending-id order every consumer (and the top-k tie-break) assumes.
  std::sort(snapshot.begin(), snapshot.end(),
            [](const CatalogEntry& x, const CatalogEntry& y) {
              return x.id < y.id;
            });
  snapshots_.fetch_add(1, std::memory_order_relaxed);
  return snapshot;
}

CommunityCatalog::ProbeResult CommunityCatalog::ProbeCandidates(
    const CommunitySignature& query_signature,
    std::span<const Dim> probe_order, Epsilon eps, double threshold) const {
  CSJ_CHECK(signature_index_ != nullptr)
      << "ProbeCandidates requires Options::signatures";
  ProbeResult result;
  SignatureIndex::ProbeQuery probe;
  probe.signature = &query_signature;
  probe.eps = eps;
  probe.threshold = threshold;
  probe.probe_order = probe_order;
  std::vector<PrescreenCandidate> passing;
  for (uint32_t shard_index = 0; shard_index < shards_.size();
       ++shard_index) {
    const Shard& shard = shards_[shard_index];
    std::shared_lock lock(shard.mu);
    passing.clear();
    signature_index_->ProbeShard(shard_index, probe, &passing, &result.stats);
    for (const PrescreenCandidate& candidate : passing) {
      const auto it = shard.entries.find(candidate.id);
      // Index rows and entries commit under one exclusive lock, so a
      // passing id is always resident at exactly the probed version.
      CSJ_CHECK(it != shard.entries.end());
      CSJ_CHECK(it->second.version == candidate.version);
      result.candidates.push_back(it->second);
    }
  }
  // Same deterministic ascending-id order as Snapshot(): the top-k walk's
  // tie-break and the differential tests both assume it.
  std::sort(result.candidates.begin(), result.candidates.end(),
            [](const CatalogEntry& x, const CatalogEntry& y) {
              return x.id < y.id;
            });
  probes_.fetch_add(1, std::memory_order_relaxed);
  prescreen_packs_skipped_.fetch_add(result.stats.packs_skipped,
                                     std::memory_order_relaxed);
  return result;
}

uint32_t CommunityCatalog::size() const {
  uint32_t total = 0;
  for (const Shard& shard : shards_) {
    std::shared_lock lock(shard.mu);
    total += static_cast<uint32_t>(shard.entries.size());
  }
  return total;
}

std::unique_ptr<LiveCoupleSession> CommunityCatalog::AttachLive(
    const Community& query, uint64_t entry_id, const JoinOptions& join) const {
  CatalogEntry entry = Get(entry_id);
  if (entry.community == nullptr) return nullptr;
  if (entry.community->d() != query.d()) return nullptr;
  auto session = std::unique_ptr<LiveCoupleSession>(
      new LiveCoupleSession(this, std::move(entry), join));
  for (UserId u = 0; u < query.size(); ++u) {
    session->AddSubscriber(query.User(u));
  }
  return session;
}

CommunityCatalog::Stats CommunityCatalog::GetStats() const {
  Stats stats;
  stats.upserts = upserts_.load(std::memory_order_relaxed);
  stats.removes = removes_.load(std::memory_order_relaxed);
  stats.snapshots = snapshots_.load(std::memory_order_relaxed);
  stats.probes = probes_.load(std::memory_order_relaxed);
  stats.prescreen_packs_skipped =
      prescreen_packs_skipped_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace csj::service
