#include "service/catalog.h"

#include <algorithm>
#include <utility>

#include "core/encoding.h"
#include "util/logging.h"
#include "util/rng.h"

namespace csj::service {

LiveCoupleSession::LiveCoupleSession(const CommunityCatalog* catalog,
                                     CatalogEntry entry,
                                     const JoinOptions& join)
    : catalog_(catalog),
      entry_(std::move(entry)),
      live_(*entry_.community, join) {}

bool LiveCoupleSession::Stale() const {
  const CatalogEntry current = catalog_->Get(entry_.id);
  return current.community == nullptr || current.version != entry_.version;
}

CommunityCatalog::CommunityCatalog() : CommunityCatalog(Options{}) {}

CommunityCatalog::CommunityCatalog(Options options) : options_(options) {
  options_.shards = std::max(options_.shards, 1u);
  shards_ = std::vector<Shard>(options_.shards);
  if (options_.signatures.has_value()) {
    signature_index_ = std::make_unique<SignatureIndex>(
        options_.shards, *options_.signatures);
  }
}

uint32_t CommunityCatalog::ShardIndexOf(uint64_t id) const {
  // Mix before reducing so dense sequential ids (the common assignment
  // scheme) and strided ids both spread over the shards.
  uint64_t state = id;
  return static_cast<uint32_t>(util::SplitMix64(state) % shards_.size());
}

const CommunityCatalog::Shard& CommunityCatalog::ShardOf(uint64_t id) const {
  return shards_[ShardIndexOf(id)];
}

CommunityCatalog::Shard& CommunityCatalog::ShardOf(uint64_t id) {
  return const_cast<Shard&>(
      static_cast<const CommunityCatalog*>(this)->ShardOf(id));
}

uint64_t CommunityCatalog::Upsert(uint64_t id, Community community) {
  CSJ_CHECK(!community.empty()) << "catalog entries must be non-empty";
  // Freeze, digest and warm OUTSIDE any lock: digesting is O(n*d) and a
  // cache build sorts the whole community — holding a shard lock across
  // either would stall every reader of the shard.
  CatalogEntry entry;
  entry.id = id;
  entry.community = std::make_shared<const Community>(std::move(community));
  entry.digest = DigestCommunity(*entry.community);
  if (options_.cache != nullptr) {
    // Key on the CLAMPED part count, exactly as the join methods do, so
    // the first query's lookups are hits, not parallel builds.
    const Encoder encoder(entry.community->d(), options_.warm_eps,
                          options_.warm_parts);
    options_.cache->GetEncodedB(*entry.community, entry.digest,
                                options_.warm_eps, encoder.parts(), nullptr);
    options_.cache->GetEncodedA(*entry.community, entry.digest,
                                options_.warm_eps, encoder.parts(), nullptr);
    options_.cache->GetCommunityWindow(*entry.community, entry.digest,
                                       nullptr);
  }
  if (signature_index_ != nullptr) {
    // Sketch building sorts every counter column — also too expensive to
    // run under the shard lock.
    entry.signature = std::make_shared<const CommunitySignature>(
        *entry.community, signature_index_->options());
  }
  entry.version = next_version_.fetch_add(1, std::memory_order_acq_rel);
  const uint32_t shard_index = ShardIndexOf(id);
  Shard& shard = shards_[shard_index];
  // Mutation clock: `started` ticks BEFORE the install is visible to any
  // reader, `finished` after it is complete — the expensive lock-free
  // pre-work above changes no catalog state, so it stays outside the
  // started/finished window and tagged readers are not invalidated by it.
  mutations_started_.fetch_add(1, std::memory_order_acq_rel);
  {
    std::unique_lock lock(shard.mu);
    shard.entries[id] = entry;
    // Entry map and sketch store commit in one critical section, so a
    // probe (under the shared lock) always sees them in agreement.
    if (signature_index_ != nullptr) {
      signature_index_->Install(shard_index, id, entry.version,
                                entry.signature);
    }
  }
  mutations_finished_.fetch_add(1, std::memory_order_acq_rel);
  upserts_.fetch_add(1, std::memory_order_relaxed);
  return entry.version;
}

bool CommunityCatalog::Remove(uint64_t id) {
  const uint32_t shard_index = ShardIndexOf(id);
  Shard& shard = shards_[shard_index];
  bool removed = false;
  // The clock must tick before we can know whether the id is resident, so
  // a Remove of an absent id ticks too: a spurious invalidation for
  // tagged readers, never a missed one.
  mutations_started_.fetch_add(1, std::memory_order_acq_rel);
  {
    std::unique_lock lock(shard.mu);
    removed = shard.entries.erase(id) > 0;
    if (removed && signature_index_ != nullptr) {
      signature_index_->Remove(shard_index, id);
    }
  }
  mutations_finished_.fetch_add(1, std::memory_order_acq_rel);
  if (removed) removes_.fetch_add(1, std::memory_order_relaxed);
  return removed;
}

CatalogEntry CommunityCatalog::Get(uint64_t id) const {
  const Shard& shard = ShardOf(id);
  std::shared_lock lock(shard.mu);
  const auto it = shard.entries.find(id);
  return it == shard.entries.end() ? CatalogEntry{} : it->second;
}

std::vector<CatalogEntry> CommunityCatalog::Snapshot() const {
  std::vector<CatalogEntry> snapshot;
  for (const Shard& shard : shards_) {
    std::shared_lock lock(shard.mu);
    for (const auto& [id, entry] : shard.entries) snapshot.push_back(entry);
  }
  // Shards partition ids by hash, so the concatenation is ordered within
  // a shard but not globally; one sort restores the deterministic
  // ascending-id order every consumer (and the top-k tie-break) assumes.
  std::sort(snapshot.begin(), snapshot.end(),
            [](const CatalogEntry& x, const CatalogEntry& y) {
              return x.id < y.id;
            });
  snapshots_.fetch_add(1, std::memory_order_relaxed);
  return snapshot;
}

CommunityCatalog::ProbeResult CommunityCatalog::ProbeCandidates(
    const CommunitySignature& query_signature,
    std::span<const Dim> probe_order, Epsilon eps, double threshold) const {
  CSJ_CHECK(signature_index_ != nullptr)
      << "ProbeCandidates requires Options::signatures";
  ProbeResult result;
  SignatureIndex::ProbeQuery probe;
  probe.signature = &query_signature;
  probe.eps = eps;
  probe.threshold = threshold;
  probe.probe_order = probe_order;
  std::vector<PrescreenCandidate> passing;
  for (uint32_t shard_index = 0; shard_index < shards_.size();
       ++shard_index) {
    const Shard& shard = shards_[shard_index];
    std::shared_lock lock(shard.mu);
    passing.clear();
    signature_index_->ProbeShard(shard_index, probe, &passing, &result.stats);
    for (const PrescreenCandidate& candidate : passing) {
      const auto it = shard.entries.find(candidate.id);
      // Index rows and entries commit under one exclusive lock, so a
      // passing id is always resident at exactly the probed version.
      CSJ_CHECK(it != shard.entries.end());
      CSJ_CHECK(it->second.version == candidate.version);
      result.candidates.push_back(it->second);
    }
  }
  // Same deterministic ascending-id order as Snapshot(): the top-k walk's
  // tie-break and the differential tests both assume it.
  std::sort(result.candidates.begin(), result.candidates.end(),
            [](const CatalogEntry& x, const CatalogEntry& y) {
              return x.id < y.id;
            });
  probes_.fetch_add(1, std::memory_order_relaxed);
  return result;
}

uint32_t CommunityCatalog::size() const {
  uint32_t total = 0;
  for (const Shard& shard : shards_) {
    std::shared_lock lock(shard.mu);
    total += static_cast<uint32_t>(shard.entries.size());
  }
  return total;
}

std::unique_ptr<LiveCoupleSession> CommunityCatalog::AttachLive(
    const Community& query, uint64_t entry_id, const JoinOptions& join) const {
  CatalogEntry entry = Get(entry_id);
  if (entry.community == nullptr) return nullptr;
  if (entry.community->d() != query.d()) return nullptr;
  auto session = std::unique_ptr<LiveCoupleSession>(
      new LiveCoupleSession(this, std::move(entry), join));
  for (UserId u = 0; u < query.size(); ++u) {
    session->AddSubscriber(query.User(u));
  }
  return session;
}

CommunityCatalog::Stats CommunityCatalog::GetStats() const {
  Stats stats;
  stats.upserts = upserts_.load(std::memory_order_relaxed);
  stats.removes = removes_.load(std::memory_order_relaxed);
  stats.snapshots = snapshots_.load(std::memory_order_relaxed);
  stats.probes = probes_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace csj::service
