#ifndef CSJ_SERVICE_REQUEST_QUEUE_H_
#define CSJ_SERVICE_REQUEST_QUEUE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "util/logging.h"

namespace csj::service {

/// Bounded multi-producer / multi-consumer queue with reject-on-full
/// admission control.
///
/// The producer side NEVER blocks: TryPush either enqueues or returns
/// false immediately (counted in `rejected()`), so a traffic spike sheds
/// load at the door instead of stalling upstream callers — the
/// admission-control contract the server builds on. The consumer side
/// blocks in Pop until an item or Close() arrives; Close() lets already-
/// queued items drain (Pop returns nullopt only when closed AND empty).
template <typename T>
class BoundedRequestQueue {
 public:
  explicit BoundedRequestQueue(size_t capacity) : capacity_(capacity) {
    CSJ_CHECK_GT(capacity, size_t{0});
  }

  BoundedRequestQueue(const BoundedRequestQueue&) = delete;
  BoundedRequestQueue& operator=(const BoundedRequestQueue&) = delete;

  /// Enqueues `item` unless the queue is full or closed. Acquires the
  /// lock but never waits for space: the caller learns the verdict in
  /// O(1) and keeps its latency budget.
  bool TryPush(T item) {
    {
      std::lock_guard lock(mutex_);
      if (!closed_ && items_.size() < capacity_) {
        items_.push_back(std::move(item));
        accepted_.fetch_add(1, std::memory_order_relaxed);
        // Unlock before notify would be a micro-optimization; keeping the
        // notify under the lock is the simple, provably race-free shape.
        ready_.notify_one();
        return true;
      }
    }
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  /// Dequeues the oldest item, blocking while the queue is open and
  /// empty. Returns nullopt once the queue is closed and drained — the
  /// consumer's shutdown signal.
  std::optional<T> Pop() {
    std::unique_lock lock(mutex_);
    ready_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Rejects all future pushes and wakes every blocked consumer; queued
  /// items remain poppable until drained.
  void Close() {
    std::lock_guard lock(mutex_);
    closed_ = true;
    ready_.notify_all();
  }

  size_t capacity() const { return capacity_; }

  size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

  uint64_t accepted() const {
    return accepted_.load(std::memory_order_relaxed);
  }
  uint64_t rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool closed_ = false;
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> rejected_{0};
};

}  // namespace csj::service

#endif  // CSJ_SERVICE_REQUEST_QUEUE_H_
