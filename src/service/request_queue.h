#ifndef CSJ_SERVICE_REQUEST_QUEUE_H_
#define CSJ_SERVICE_REQUEST_QUEUE_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace csj::service {

/// Bounded multi-producer / multi-consumer queue with reject-on-full
/// admission control and DEADLINE-AWARE (EDF) ordering.
///
/// The producer side NEVER blocks: TryPush either enqueues or returns
/// false immediately (counted in `rejected()`), so a traffic spike sheds
/// load at the door instead of stalling upstream callers — the
/// admission-control contract the server builds on. The consumer side
/// blocks in Pop until an item or Close() arrives; Close() lets already-
/// queued items drain (Pop returns nullopt only when closed AND empty).
///
/// Ordering: Pop returns the item with the EARLIEST DEADLINE first
/// (classic EDF), so a tight-deadline request admitted behind a burst is
/// served next instead of expiring in line. Items without a deadline sort
/// as "deadline = infinity": they run after every deadlined item currently
/// queued, and KEEP ARRIVAL ORDER among themselves (a monotonic admission
/// sequence number breaks every tie, so the order is total and
/// deterministic — with no deadlines in the mix the queue degenerates to
/// exact FIFO). Deadlines are fixed at admission; the heap never re-keys.
template <typename T>
class BoundedRequestQueue {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;

  explicit BoundedRequestQueue(size_t capacity) : capacity_(capacity) {
    CSJ_CHECK_GT(capacity, size_t{0});
  }

  BoundedRequestQueue(const BoundedRequestQueue&) = delete;
  BoundedRequestQueue& operator=(const BoundedRequestQueue&) = delete;

  /// Enqueues `item` unless the queue is full or closed. Acquires the
  /// lock but never waits for space: the caller learns the verdict in
  /// O(log n) and keeps its latency budget. `deadline` (nullopt = none)
  /// is the EDF key; it should match the deadline the consumer enforces.
  bool TryPush(T item, std::optional<TimePoint> deadline = std::nullopt) {
    bool pushed = false;
    {
      std::lock_guard lock(mutex_);
      if (!closed_ && items_.size() < capacity_) {
        items_.push_back(Slot{deadline, next_sequence_++, std::move(item)});
        std::push_heap(items_.begin(), items_.end(), SlotAfter{});
        high_water_ = std::max(high_water_, items_.size());
        pushed = true;
      }
    }
    // Notify OUTSIDE the critical section: a consumer woken while the
    // producer still holds the mutex would immediately block on it (the
    // "hurry up and wait" pattern). Waiters re-check the predicate under
    // the lock, so no wakeup is lost — if the consumer checks between our
    // unlock and notify it simply finds the item already queued.
    if (pushed) {
      accepted_.fetch_add(1, std::memory_order_relaxed);
      ready_.notify_one();
      return true;
    }
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  /// Dequeues the earliest-deadline item (arrival order among equals and
  /// the deadline-free), blocking while the queue is open and empty.
  /// Returns nullopt once the queue is closed and drained — the
  /// consumer's shutdown signal.
  std::optional<T> Pop() {
    std::unique_lock lock(mutex_);
    ready_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    std::pop_heap(items_.begin(), items_.end(), SlotAfter{});
    T item = std::move(items_.back().item);
    items_.pop_back();
    return item;
  }

  /// Rejects all future pushes and wakes every blocked consumer; queued
  /// items remain poppable until drained.
  void Close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  size_t capacity() const { return capacity_; }

  size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

  /// Largest queue depth ever observed (monotonic; the server's
  /// backlog-pressure stat).
  size_t high_water() const {
    std::lock_guard lock(mutex_);
    return high_water_;
  }

  uint64_t accepted() const {
    return accepted_.load(std::memory_order_relaxed);
  }
  uint64_t rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }

 private:
  /// Heap slot: the EDF key is (deadline, admission sequence); no
  /// deadline sorts after every real one.
  struct Slot {
    std::optional<TimePoint> deadline;
    uint64_t sequence = 0;
    T item;
  };

  /// "x is served after y" — the comparator for a std::push_heap max-heap
  /// whose top is therefore the item served FIRST.
  struct SlotAfter {
    bool operator()(const Slot& x, const Slot& y) const {
      if (x.deadline.has_value() != y.deadline.has_value()) {
        return x.deadline.has_value() < y.deadline.has_value();
      }
      if (x.deadline.has_value() && *x.deadline != *y.deadline) {
        return *x.deadline > *y.deadline;
      }
      return x.sequence > y.sequence;
    }
  };

  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::vector<Slot> items_;  ///< binary heap ordered by SlotAfter
  uint64_t next_sequence_ = 0;
  size_t high_water_ = 0;
  bool closed_ = false;
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> rejected_{0};
};

}  // namespace csj::service

#endif  // CSJ_SERVICE_REQUEST_QUEUE_H_
