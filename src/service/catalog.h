#ifndef CSJ_SERVICE_CATALOG_H_
#define CSJ_SERVICE_CATALOG_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>
#include <vector>

#include "core/community.h"
#include "core/encoding.h"
#include "core/encoding_cache.h"
#include "core/join_options.h"
#include "core/signature.h"
#include "core/types.h"
#include "incremental/incremental_csj.h"

namespace csj::service {

/// One resident catalog community, as handed out by Get()/Snapshot().
///
/// Entries are COPY-ON-WRITE: the Community behind `community` is frozen
/// at Upsert time and never mutated afterwards — an upsert of the same id
/// installs a NEW shared buffer under a NEW version and simply drops the
/// shard's reference to the old one. Any reader (a snapshot, a running
/// top-k query, a live session) that still holds the shared_ptr keeps the
/// old buffers alive and consistent; there is no in-place mutation to
/// race with, which is what makes long joins against a churning catalog
/// safe.
struct CatalogEntry {
  uint64_t id = 0;
  /// Catalog-wide monotonic version, unique per successful Upsert. A
  /// larger version was installed later (across ALL ids, not just this
  /// one), so "did this entry change since I looked?" is one compare.
  uint64_t version = 0;
  std::shared_ptr<const Community> community;
  /// Content fingerprint + max counter, precomputed once at Upsert so
  /// queries hitting the encoding cache never re-scan the counters.
  CommunityDigest digest;
  /// Prescreen sketch, built at Upsert when the catalog has a signature
  /// index configured (null otherwise). Frozen with the community.
  std::shared_ptr<const CommunitySignature> signature;
};

/// One record of the catalog's optional MUTATION LOG (see
/// Options::mutation_log_capacity): which id changed, in what way, in
/// which order. Consumers such as the evolution subsystem's
/// `TopKMaintainer` replay the suffix of the log since their last
/// cursor to learn exactly which entries moved, instead of re-scanning
/// the whole catalog.
struct MutationRecord {
  /// Dense 1-based append ordinal — record seq is issued exactly once
  /// and never skipped, so a consumer holding cursor c has seen the
  /// complete mutation history iff it reads every record with seq > c.
  uint64_t seq = 0;
  uint64_t id = 0;
  /// The installed entry version for upserts; 0 for removes (a Remove
  /// consumes no catalog version, matching the un-logged behavior).
  uint64_t version = 0;
  bool remove = false;
};

/// One mutation as observed by a MUTATION SINK (the durable-log seam,
/// see CommunityCatalog::SetMutationSink). Unlike the in-RAM
/// MutationRecord — which only names WHAT changed — a sink event carries
/// the installed payload itself, so a persistence layer can write a
/// self-contained log record without re-reading the catalog.
struct MutationEvent {
  uint64_t id = 0;
  /// Issued entry version for upserts; 0 for removes.
  uint64_t version = 0;
  bool remove = false;
  /// The frozen installed buffer (null for removes). The sink may retain
  /// the shared_ptr; the buffer is immutable for its lifetime.
  std::shared_ptr<const Community> community;
};

/// A live, incrementally maintained exact similarity between ONE query
/// community (the churn side, B) and ONE pinned catalog entry (A).
///
/// Attaching pins the entry's snapshot: the session stays valid and
/// exact against the PINNED version even while the catalog replaces or
/// removes the entry. `Stale()` reports when the catalog has moved on;
/// the owner re-attaches to follow (rebuilds are the documented A-churn
/// policy of IncrementalCsj).
///
/// A session is externally synchronized: one owner drives it (the
/// subscriber-churn stream of one query), concurrency across sessions
/// and against the catalog is free.
class LiveCoupleSession {
 public:
  using Handle = incremental::IncrementalCsj::Handle;

  /// Subscriber churn on the query side; exact matching maintained after
  /// every call (see incremental/incremental_csj.h).
  Handle AddSubscriber(std::span<const Count> vec) {
    return live_.AddUser(vec);
  }
  bool RemoveSubscriber(Handle handle) { return live_.RemoveUser(handle); }

  double Similarity() const { return live_.Similarity(); }
  uint32_t live_subscribers() const { return live_.live_users(); }
  uint32_t matched_pairs() const { return live_.matched_pairs(); }
  bool SizesAdmissible() const { return live_.SizesAdmissible(); }

  /// The catalog entry this session is pinned to (its frozen snapshot).
  const CatalogEntry& entry() const { return entry_; }

  /// True when the catalog no longer holds exactly the pinned version of
  /// the entry (it was upserted again or removed). The session itself
  /// remains valid and exact against the pinned snapshot.
  bool Stale() const;

 private:
  friend class CommunityCatalog;
  LiveCoupleSession(const class CommunityCatalog* catalog, CatalogEntry entry,
                    const JoinOptions& join);

  const class CommunityCatalog* catalog_;
  CatalogEntry entry_;
  incremental::IncrementalCsj live_;
};

/// Sharded, versioned community catalog — the stateful half of the
/// serving subsystem. Holds the platform's brand communities behind
/// per-shard shared_mutexes so concurrent Upsert/Remove/Snapshot/Get
/// from many server workers never serialize on one lock.
///
/// Snapshot semantics: a snapshot is PER-SHARD atomic — each shard's
/// entries are read under one shared lock, so a snapshot never observes a
/// torn entry or a half-applied upsert. Across shards it is NOT a global
/// point in time: an upsert racing the snapshot may appear in a later
/// shard but not an earlier one. Queries accept this (a request racing an
/// upsert may legitimately see either state); anything needing stronger
/// ordering keys off entry versions, which are catalog-wide monotonic.
///
/// Warmup: when a `cache` is configured, Upsert pre-builds the entry's
/// MinMax encoded buffers (both sides) and its Baseline SoA window for
/// (warm_eps, warm_parts) OUTSIDE any shard lock, so the first query
/// against a fresh entry pays no encoding build on the serving path.
class CommunityCatalog {
 public:
  struct Options {
    /// Lock shards; clamped to >= 1. 8 is plenty below ~10^2 workers.
    uint32_t shards = 8;
    /// Optional encoding cache to warm entries into (not owned; must
    /// outlive the catalog). Queries wanting the warmed buffers must use
    /// the same cache via JoinOptions::cache.
    EncodingCache* cache = nullptr;
    /// Parameters the warmup builds for; align them with the serving
    /// JoinOptions or the first query still builds its own.
    Epsilon warm_eps = 1;
    uint32_t warm_parts = 4;
    /// When set, the catalog maintains a SignatureIndex: Upsert builds
    /// the entry's sketch (outside any lock, next to the cache warmup)
    /// and installs it — under the SAME exclusive shard lock as the
    /// entry map, so index and entries can never disagree. Queries use
    /// ProbeCandidates() for sub-linear candidate generation.
    std::optional<SignatureOptions> signatures;
    /// When nonzero, every successful mutation (Upsert, BulkLoad member,
    /// Remove of a resident id) appends a MutationRecord to a bounded
    /// in-memory log holding the most recent `mutation_log_capacity`
    /// records. Appends happen inside the same exclusive shard section
    /// as the install itself, so for any single id the log order equals
    /// the install order. 0 (the default) disables the log entirely —
    /// no behavior or cost change for existing deployments.
    size_t mutation_log_capacity = 0;
  };

  // Two overloads rather than `Options options = {}`: a nested struct's
  // default member initializers are not usable in a default argument
  // until the enclosing class is complete.
  CommunityCatalog();
  explicit CommunityCatalog(Options options);

  /// Installs (or replaces) the community under `id` and returns the new
  /// catalog-wide version. The community is frozen (moved into a shared
  /// immutable buffer); digesting and cache warmup run outside any lock.
  uint64_t Upsert(uint64_t id, Community community);

  /// Per-phase accounting of one BulkLoad call.
  struct BulkLoadStats {
    uint64_t entries = 0;
    double encode_seconds = 0.0;   ///< freeze + digest + cache warm wave
    double sketch_seconds = 0.0;   ///< signature build wave
    double install_seconds = 0.0;  ///< per-shard locked install phase
  };

  /// Batched ingestion fast path: installs every (id, community) of
  /// `batch` and returns the LAST version issued (0 for an empty batch).
  /// The final catalog + signature-index state is byte-identical to
  /// calling Upsert once per element in batch order — a contiguous
  /// version block is reserved up front so element i gets exactly the
  /// version the sequential loop would have issued, and each shard's
  /// elements are installed in batch order (duplicate ids: last wins,
  /// exactly like repeated Upserts). What makes it fast on one core is
  /// fewer operations, not threads: warm cache artifacts are built
  /// directly and bulk-inserted (no per-key build-dedup machinery),
  /// sketches go through the scratch-reusing builder, and each shard
  /// takes ONE exclusive lock for its whole sub-batch with index pack
  /// capacity reserved up front. The parallel waves additionally scale
  /// on multi-core hosts. Safe under concurrent Query/Upsert/Remove
  /// traffic: per-shard installs use the same locks and mutation-clock
  /// ticks as Upsert, so tagged readers see each shard flip atomically.
  uint64_t BulkLoad(std::vector<std::pair<uint64_t, Community>> batch,
                    BulkLoadStats* stats = nullptr);

  /// Zero-copy variant for callers that already hold frozen (immutable,
  /// shared) communities — the catalog installs the caller's buffers
  /// directly instead of copying them. Same contract as above in every
  /// other respect; every pointer must be non-null and non-empty.
  uint64_t BulkLoad(
      std::vector<std::pair<uint64_t, std::shared_ptr<const Community>>> batch,
      BulkLoadStats* stats = nullptr);

  /// Removes `id`. Returns false when absent. Readers holding the entry
  /// keep its buffers alive; the catalog just forgets it.
  bool Remove(uint64_t id);

  /// One entry of a RestoreBatch() call: a fully reconstructed catalog
  /// entry carrying its ORIGINAL version plus any pre-built derived
  /// artifacts. `signature` may be null (built at restore when the
  /// catalog has a signature index); the three warm-cache artifacts may
  /// individually be null (built at restore when a cache is configured).
  struct RestoredEntry {
    uint64_t id = 0;
    uint64_t version = 0;
    std::shared_ptr<const Community> community;
    CommunityDigest digest;
    std::shared_ptr<const CommunitySignature> signature;
    std::shared_ptr<const EncodedB> encoded_b;
    std::shared_ptr<const EncodedA> encoded_a;
    std::shared_ptr<const VerifyWindow> window;
  };

  /// Recovery fast path: installs every entry of `batch` under its
  /// EXPLICIT version (BulkLoad cannot do this — it reissues a fresh
  /// contiguous block, and a store recovering `{v3, v17}` after removes
  /// holds a non-contiguous version set) and advances the catalog's
  /// version counter to exactly `next_version`, so post-restore upserts
  /// issue the same versions the pre-crash catalog would have.
  ///
  /// Entry ids must be unique and versions unique and < `next_version`;
  /// batch order is the install order within each shard, which a persist
  /// layer uses to replay the writer's exact index pack layout. Warm
  /// artifacts provided on an entry are bulk-inserted into the cache
  /// as-is (keyed on warm_eps / clamped warm_parts); absent ones are
  /// built, byte-identical to what Upsert would have produced. The
  /// mutation SINK is deliberately not invoked — a restore replays the
  /// durable log, it must not re-append to it — and the in-RAM journal
  /// stays empty: it is bounded history, not state, and consumers
  /// resynchronize via mutation_seq() cursors.
  uint64_t RestoreBatch(std::vector<RestoredEntry> batch,
                        uint64_t next_version, BulkLoadStats* stats = nullptr);

  /// Installs the DURABLE-LOG SEAM: `sink` is invoked once per effective
  /// mutation (every Upsert, every BulkLoad member, every Remove that
  /// erased a resident id) INSIDE the same exclusive shard section as
  /// the install itself — the same spot the in-RAM journal appends — so
  /// the sink's observed order can never contradict the install order
  /// any reader observes, per shard and per id. The sink must be
  /// thread-safe (shards mutate concurrently) and fast: it runs under a
  /// shard lock, so it should buffer, not block on I/O. Set it while the
  /// catalog is quiescent (there is no synchronization against in-flight
  /// mutations); pass nullptr to detach.
  using MutationSink = std::function<void(const MutationEvent&)>;
  void SetMutationSink(MutationSink sink) { mutation_sink_ = std::move(sink); }

  /// The current entry for `id`, or an empty optional-like entry
  /// (community == nullptr) when absent.
  CatalogEntry Get(uint64_t id) const;

  /// All resident entries, ascending id (deterministic for a quiesced
  /// catalog). See the class comment for cross-shard semantics.
  std::vector<CatalogEntry> Snapshot() const;

  /// Resident entry count (sum over shards; racy under churn, exact when
  /// quiesced).
  uint32_t size() const;

  /// Largest version issued so far (0 before the first upsert).
  uint64_t latest_version() const {
    return next_version_.load(std::memory_order_acquire) - 1;
  }

  /// The MUTATION CLOCK: two monotonic counters bumped around every
  /// state-changing operation (Upsert and Remove — including a Remove of
  /// an absent id, which spuriously ticks but never lies). `started` is
  /// incremented BEFORE the operation touches any shard; `finished` AFTER
  /// its effects are fully installed. Always finished <= started; they
  /// are equal exactly when the catalog is quiescent.
  ///
  /// The clock is what makes version-tagged read results (the server's
  /// hot-query result cache, its shared snapshot) provably safe:
  ///
  ///   f1 = mutations_finished();      // BEFORE the read
  ///   ... snapshot / compute ...
  ///   s2 = mutations_started();       // AFTER the read
  ///
  /// If f1 == s2, every mutation that ever started had fully finished
  /// before the read began (finished <= started is monotone), and none
  /// started while it ran — the read observed ONE stable state, uniquely
  /// named by the tag f1. A tagged artifact may be reused as long as
  /// mutations_started() still equals its tag: no mutation has begun
  /// since the stable state it captured, so the state is bit-identical.
  /// Any in-flight or later mutation bumps `started` first and the tag
  /// check fails — invalidation costs one relaxed load.
  uint64_t mutations_started() const {
    return mutations_started_.load(std::memory_order_acquire);
  }
  uint64_t mutations_finished() const {
    return mutations_finished_.load(std::memory_order_acquire);
  }

  /// Last mutation-log sequence number issued (0 before the first logged
  /// mutation, and always 0 when the log is disabled).
  uint64_t mutation_seq() const;

  /// Appends every retained log record with seq > `cursor` to `out`, in
  /// append order, and returns true. Returns false — appending nothing —
  /// when the log is disabled or when records after `cursor` have
  /// already been truncated away (the consumer fell more than
  /// `mutation_log_capacity` records behind); the caller must then
  /// resynchronize with a full recompute against the live catalog.
  /// Passing cursor = mutation_seq() read at resync time restarts clean:
  /// mutations racing the resync read land after that cursor and are
  /// replayed (possibly redundantly, never missed) on the next call.
  bool ReadMutationsSince(uint64_t cursor,
                          std::vector<MutationRecord>* out) const;

  /// Pins the current entry of `entry_id` and builds a live incremental
  /// session for (query, entry): the query community's users are seeded
  /// as the initial subscribers (handles 0..n-1 in user order), further
  /// churn goes through the session. Returns nullptr when the id is
  /// absent or the dimensionalities differ. `join` supplies eps and the
  /// encoding part count.
  std::unique_ptr<LiveCoupleSession> AttachLive(const Community& query,
                                                uint64_t entry_id,
                                                const JoinOptions& join) const;

  /// Sweeps the signature index and returns the entries whose certified
  /// similarity cap reaches `threshold` (ascending id, like Snapshot()),
  /// plus the sweep accounting. Like a snapshot this is PER-SHARD atomic:
  /// within a shard the index verdicts and the returned entries observe
  /// one consistent state. Requires a configured signature index and a
  /// query signature built with its options.
  struct ProbeResult {
    std::vector<CatalogEntry> candidates;
    PrescreenStats stats;
  };
  ProbeResult ProbeCandidates(const CommunitySignature& query_signature,
                              std::span<const Dim> probe_order, Epsilon eps,
                              double threshold) const;

  /// The signature configuration, or nullptr when prescreening is off.
  const SignatureOptions* signature_options() const {
    return signature_index_ == nullptr ? nullptr
                                       : &signature_index_->options();
  }

  /// The underlying index (nullptr when off). Exposed for tests and
  /// stats; mutating calls remain the catalog's alone.
  const SignatureIndex* signature_index() const {
    return signature_index_.get();
  }

  /// The construction options (the persistence layer reads the warm
  /// parameters and cache pointer to seal and restore derived
  /// artifacts in the exact shape serving expects).
  const Options& options() const { return options_; }

  /// Monotonic operation counters (for the server's stats surface).
  struct Stats {
    uint64_t upserts = 0;
    uint64_t removes = 0;
    uint64_t snapshots = 0;
    uint64_t probes = 0;
    /// Whole index packs dismissed by the pack-level prefilter across
    /// all ProbeCandidates calls (the second filter level's win meter).
    uint64_t prescreen_packs_skipped = 0;
  };
  Stats GetStats() const;

 private:
  struct alignas(64) Shard {
    mutable std::shared_mutex mu;
    std::map<uint64_t, CatalogEntry> entries;
  };

  /// The bounded mutation log (see Options::mutation_log_capacity). Its
  /// own mutex rather than a shard's: appends come from every shard, and
  /// readers must see one consistent (records, next_seq) pair without
  /// taking any shard lock. Records are dense: records[i].seq ==
  /// first_seq + i whenever the deque is non-empty.
  struct MutationLog {
    mutable std::mutex mu;
    std::deque<MutationRecord> records;
    uint64_t next_seq = 1;   ///< seq the NEXT append will take
    uint64_t first_seq = 1;  ///< seq of records.front() when non-empty
  };

  uint32_t ShardIndexOf(uint64_t id) const;
  const Shard& ShardOf(uint64_t id) const;
  Shard& ShardOf(uint64_t id);
  void AppendMutation(uint64_t id, uint64_t version, bool remove);

  Options options_;
  std::vector<Shard> shards_;
  /// Sketch store mirroring shards_ one-to-one; every mutation happens
  /// under the matching shard's exclusive lock (see Options::signatures).
  std::unique_ptr<SignatureIndex> signature_index_;
  /// Null when Options::mutation_log_capacity == 0.
  std::unique_ptr<MutationLog> mutation_log_;
  /// The durable-log seam (see SetMutationSink); empty when detached.
  MutationSink mutation_sink_;
  /// Next version to issue; versions are catalog-wide and monotonic.
  std::atomic<uint64_t> next_version_{1};
  /// The mutation clock (see mutations_started()). Bumped around BOTH
  /// mutating entry points so tagged readers detect any concurrent churn.
  std::atomic<uint64_t> mutations_started_{0};
  std::atomic<uint64_t> mutations_finished_{0};
  std::atomic<uint64_t> upserts_{0};
  std::atomic<uint64_t> removes_{0};
  mutable std::atomic<uint64_t> snapshots_{0};
  mutable std::atomic<uint64_t> probes_{0};
  mutable std::atomic<uint64_t> prescreen_packs_skipped_{0};
};

}  // namespace csj::service

#endif  // CSJ_SERVICE_CATALOG_H_
