#include "service/topk.h"

#include <algorithm>
#include <set>
#include <utility>

#include "core/similarity.h"
#include "core/similarity_bound.h"
#include "pipeline/screening.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace csj::service {

namespace {

/// One admissible candidate of the walk.
struct Candidate {
  uint32_t snapshot_index = 0;
  double bound = 0.0;
};

/// The top-k order: similarity descending, id ascending. A strict weak
/// ordering over (similarity, id), so the running top-k set is unique —
/// no two entries share an id within one snapshot.
struct RankedLess {
  bool operator()(const TopKEntry& x, const TopKEntry& y) const {
    if (x.similarity != y.similarity) return x.similarity > y.similarity;
    return x.id < y.id;
  }
};

bool DeadlinePassed(const std::optional<Deadline>& deadline) {
  return deadline.has_value() &&
         std::chrono::steady_clock::now() >= *deadline;
}

/// Orients one couple by the auto-order rule (smaller side plays B; the
/// query wins ties, matching ComputeSimilarityAutoOrder(query, entry)).
void OrientCouple(const Community& query, const Community& entry,
                  const Community** b, const Community** a) {
  const bool query_is_b = query.size() <= entry.size();
  *b = query_is_b ? &query : &entry;
  *a = query_is_b ? &entry : &query;
}

}  // namespace

TopKSimilarService::TopKSimilarService(const CommunityCatalog* catalog)
    : catalog_(catalog) {
  CSJ_CHECK(catalog != nullptr);
}

TopKResult TopKSimilarService::Query(
    const Community& query, const TopKOptions& options,
    const std::optional<Deadline>& deadline) const {
  // Prescreen is inert — a plain scan — without a signature index or for
  // an empty query (which cannot be sketched and matches nothing anyway).
  if (options.prescreen && catalog_->signature_options() != nullptr &&
      !query.empty()) {
    return QueryPrescreen(query, options, deadline);
  }
  return QuerySnapshot(query, catalog_->Snapshot(), options, deadline);
}

TopKResult TopKSimilarService::QueryPrescreen(
    const Community& query, const TopKOptions& options,
    const std::optional<Deadline>& deadline) const {
  util::Timer prescreen_timer;
  const CommunitySignature query_signature(query,
                                           *catalog_->signature_options());
  const std::vector<Dim> probe_order = SignatureProbeOrder(query_signature);
  const double tau = options.prescreen_threshold;
  const CommunityCatalog::ProbeResult probe = catalog_->ProbeCandidates(
      query_signature, probe_order, options.join.eps, tau);
  const double prescreen_seconds = prescreen_timer.Seconds();

  TopKResult result =
      QuerySnapshot(query, probe.candidates, options, deadline);
  result.stats.prescreen_probed = static_cast<uint32_t>(probe.stats.passed);
  result.stats.prescreen_skipped =
      static_cast<uint32_t>(probe.stats.examined - probe.stats.passed);
  result.stats.prescreen_packs_skipped =
      static_cast<uint32_t>(probe.stats.packs_skipped);
  result.stats.prescreen_seconds = prescreen_seconds;

  // Certification: every swept-away entry has similarity < tau (the cap
  // is a proven upper bound), so the candidate-only top-k equals the
  // exhaustive one iff k results exist with the k-th at or above tau —
  // nothing skipped can then displace or tie into the ranking. Anything
  // less certifies nothing and triggers the exhaustive fallback. A probe
  // that skipped nothing has nothing to fall back FOR; and a deadline
  // blown on the candidate walk returns the flagged partial as a scan
  // query would.
  const uint32_t k = std::max(options.k, 1u);
  const bool certified = result.entries.size() >= k &&
                         result.entries.back().similarity >= tau;
  if (certified || result.deadline_expired ||
      probe.stats.passed == probe.stats.examined) {
    result.stats.catalog_entries =
        static_cast<uint32_t>(probe.stats.examined);
    return result;
  }

  TopKResult full = QuerySnapshot(query, catalog_->Snapshot(), options,
                                  deadline);
  // Honest accounting: the fallback's totals include the candidate-phase
  // work that preceded it.
  full.stats.refined += result.stats.refined;
  full.stats.waves += result.stats.waves;
  full.stats.bound_seconds += result.stats.bound_seconds;
  full.stats.refine_seconds += result.stats.refine_seconds;
  full.stats.prescreen_probed = result.stats.prescreen_probed;
  full.stats.prescreen_skipped = result.stats.prescreen_skipped;
  full.stats.prescreen_packs_skipped = result.stats.prescreen_packs_skipped;
  full.stats.prescreen_seconds = prescreen_seconds;
  full.stats.fallback = 1;
  return full;
}

TopKResult TopKSimilarService::QuerySnapshot(
    const Community& query, const std::vector<CatalogEntry>& snapshot,
    const TopKOptions& options,
    const std::optional<Deadline>& deadline) const {
  TopKResult result;
  result.stats.catalog_entries = static_cast<uint32_t>(snapshot.size());
  const uint32_t k = std::max(options.k, 1u);

  // An empty query is a QUERY invariant, not a per-entry condition: an
  // empty B matches nothing, so every couple is inadmissible. Resolve it
  // once here (same counter totals as the old per-entry accounting)
  // instead of re-testing it on every snapshot entry.
  if (query.empty()) {
    result.stats.inadmissible = result.stats.catalog_entries;
    return result;
  }

  util::ThreadPool& pool =
      options.pool != nullptr ? *options.pool : util::ThreadPool::Global();
  const uint32_t threads =
      std::max(1u, std::min(options.query_threads, pool.threads()));

  // Phase 1: orientation + admissibility + batched bounds. Couples are
  // enumerated in snapshot (ascending-id) order; slot-per-index keeps the
  // bound vector deterministic for any thread count.
  util::Timer bound_timer;
  std::vector<uint32_t> admissible;
  std::vector<std::pair<const Community*, const Community*>> couples;
  for (uint32_t i = 0; i < snapshot.size(); ++i) {
    const CatalogEntry& entry = snapshot[i];
    CSJ_CHECK(entry.community != nullptr);
    if (entry.community->d() != query.d()) {
      ++result.stats.inadmissible;
      continue;
    }
    const Community* b = nullptr;
    const Community* a = nullptr;
    OrientCouple(query, *entry.community, &b, &a);
    if (!SizesAdmissible(b->size(), a->size())) {
      ++result.stats.inadmissible;
      continue;
    }
    admissible.push_back(i);
    couples.emplace_back(b, a);
  }
  result.stats.admissible = static_cast<uint32_t>(admissible.size());

  const std::vector<double> bounds = SimilarityUpperBounds(
      couples, options.join.eps, threads > 1 ? &pool : nullptr, threads);

  // Walk order: bound descending, id ascending (snapshot order is
  // ascending id, so a stable sort on the bound alone would do — the
  // explicit tie-break documents the contract).
  std::vector<Candidate> candidates(admissible.size());
  for (uint32_t c = 0; c < admissible.size(); ++c) {
    candidates[c] = Candidate{admissible[c], bounds[c]};
  }
  std::sort(candidates.begin(), candidates.end(),
            [&](const Candidate& x, const Candidate& y) {
              if (x.bound != y.bound) return x.bound > y.bound;
              return snapshot[x.snapshot_index].id <
                     snapshot[y.snapshot_index].id;
            });
  result.stats.bound_seconds = bound_timer.Seconds();

  if (DeadlinePassed(deadline)) {
    result.deadline_expired = true;
    return result;
  }

  // Phase 2: refine waves, best bound first, cutoff between waves.
  util::Timer refine_timer;
  const uint32_t wave_size =
      options.batch_size > 0 ? options.batch_size : threads;
  // The intra-join budget mirrors the pipeline's rule: with up to
  // `threads` joins in flight per wave, each join gets its fair share of
  // the pool (the whole pool when the wave is a single giant couple).
  JoinOptions join = options.join;
  if (join.pool == nullptr) join.pool = &pool;
  std::set<TopKEntry, RankedLess> best;
  std::vector<TopKEntry> wave_results;

  uint32_t next = 0;
  while (next < candidates.size()) {
    if (DeadlinePassed(deadline)) {
      result.deadline_expired = true;
      break;
    }
    if (options.use_bound_cutoff && best.size() >= k &&
        candidates[next].bound < std::prev(best.end())->similarity) {
      // Every remaining candidate c has similarity <= bound(c) <=
      // bound(next) < kth similarity: strictly below k refined entries,
      // hence outside the top-k under any tie-break. Stop.
      result.stats.bound_skipped =
          static_cast<uint32_t>(candidates.size() - next);
      break;
    }

    const uint32_t wave_end =
        std::min(next + wave_size, static_cast<uint32_t>(candidates.size()));
    const uint32_t wave = wave_end - next;
    ++result.stats.waves;
    wave_results.assign(wave, TopKEntry{});

    std::vector<std::pair<const Community*, const Community*>> wave_couples;
    wave_couples.reserve(wave);
    for (uint32_t w = 0; w < wave; ++w) {
      const CatalogEntry& entry =
          snapshot[candidates[next + w].snapshot_index];
      const Community* b = nullptr;
      const Community* a = nullptr;
      OrientCouple(query, *entry.community, &b, &a);
      wave_couples.emplace_back(b, a);
    }
    JoinOptions wave_join = join;
    wave_join.join_threads = pipeline::NestedJoinThreads(
        join.join_threads, threads, pool.threads(), wave);
    wave_join.matching_threads = pipeline::NestedJoinThreads(
        join.matching_threads, threads, pool.threads(), wave);

    const auto refine_one = [&](uint32_t w) {
      const CatalogEntry& entry =
          snapshot[candidates[next + w].snapshot_index];
      const auto refined =
          ComputeSimilarity(options.method, *wave_couples[w].first,
                            *wave_couples[w].second, wave_join);
      CSJ_CHECK(refined.has_value());  // admissibility checked in phase 1
      wave_results[w] =
          TopKEntry{entry.id, entry.version, refined->Similarity()};
    };
    if (threads > 1 && wave > 1) {
      // Cost-aware order inside the wave: the pool claims tasks in the
      // given sequence, so most-expensive-first keeps a skewed giant from
      // landing last and serializing the wave's tail.
      const std::vector<uint32_t> order =
          pipeline::CostAwareOrder(wave_couples);
      pool.Run(wave, [&](uint32_t t) { refine_one(order[t]); }, threads);
    } else {
      for (uint32_t w = 0; w < wave; ++w) refine_one(w);
    }

    // Merge in wave (bound) order — deterministic for any thread count.
    for (const TopKEntry& refined : wave_results) {
      best.insert(refined);
      if (best.size() > k) best.erase(std::prev(best.end()));
    }
    result.stats.refined += wave;
    next = wave_end;
  }
  result.stats.refine_seconds = refine_timer.Seconds();

  result.entries.assign(best.begin(), best.end());
  return result;
}

}  // namespace csj::service
