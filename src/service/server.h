#ifndef CSJ_SERVICE_SERVER_H_
#define CSJ_SERVICE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/community.h"
#include "service/catalog.h"
#include "service/request_queue.h"
#include "service/result_cache.h"
#include "service/topk.h"
#include "util/histogram.h"

namespace csj::service {

/// What a request asks the server to do.
enum class RequestKind : uint8_t {
  kTopK,    ///< rank the catalog against `query`
  kUpsert,  ///< install `query` as catalog entry `id`
  kRemove,  ///< drop catalog entry `id`
};

enum class ServeStatus : uint8_t {
  kOk,
  kRejected,         ///< admission control: queue full (never executed)
  kDeadlineExpired,  ///< ran out of budget between phases
  kNotFound,         ///< kRemove of an absent id
};

const char* ServeStatusName(ServeStatus status);

struct ServeRequest {
  RequestKind kind = RequestKind::kTopK;
  /// Target entry for kUpsert / kRemove.
  uint64_t id = 0;
  /// The query community (kTopK) or the payload to install (kUpsert).
  /// Shared so producers can reuse one community across many requests
  /// without copying megabytes per request.
  std::shared_ptr<const Community> community;
  /// Per-request top-k parameters (kTopK only).
  TopKOptions topk;
  /// Latency budget in seconds, measured from ADMISSION (TryPush), so
  /// queueing time counts against it — a request stuck behind a burst
  /// expires instead of consuming refine work nobody is waiting for.
  /// 0 = no deadline. Also the queue's EDF key: tighter deadlines are
  /// served first, deadline-free requests keep arrival order.
  double deadline_seconds = 0.0;
};

struct ServeResponse {
  ServeStatus status = ServeStatus::kOk;
  /// kTopK result (possibly partial when status == kDeadlineExpired).
  TopKResult topk;
  /// Version installed by kUpsert.
  uint64_t version = 0;
  /// True when `topk.entries` was served from the versioned result cache
  /// (byte-identical to recomputing; see TopKResultCache).
  bool cache_hit = false;
  /// The catalog mutation-clock tag the top-k ranking is exact against
  /// (hits AND stable-state misses); 0 when the catalog was churning
  /// around this request and no stable state can be named.
  uint64_t state_version = 0;
  /// Execution order: the n-th request a worker dequeued gets sequence n
  /// (from 1). Exposes the queue's EDF ordering to tests and tracing.
  uint64_t sequence = 0;
  /// Seconds from admission to execution start (queue wait) and to
  /// completion (what the client experienced).
  double queue_seconds = 0.0;
  double total_seconds = 0.0;
};

/// The long-running serving front end: a bounded request queue feeding a
/// fixed crew of worker threads that execute against the shared
/// CommunityCatalog / TopKSimilarService.
///
/// Threading model: producers (any thread) call Submit, which either
/// admits the request — returning a future the producer may wait on, or
/// registering a completion callback — or rejects it immediately when the
/// queue is full. Workers pop requests in EDF order (earliest deadline
/// first; deadline-free requests keep arrival order) and execute them one
/// at a time; per-request parallelism comes from
/// TopKOptions::query_threads (usually 1 under heavy traffic — the
/// workers ARE the parallelism), catalog mutations are safe by the
/// catalog's own sharded locking.
///
/// Result cache: with Options::result_cache enabled, kTopK requests
/// consult a TopKResultCache keyed on (catalog mutation-clock tag, query
/// content fingerprint, k, eps, method, prescreen, threshold, cutoff). A
/// hit skips the snapshot, the bound phase and every refine wave and is
/// byte-identical to recomputing (the clock protocol in catalog.h proves
/// the catalog state is bit-identical to the one the entry was computed
/// against). Misses computed against a PROVEN-stable catalog are
/// installed on the way out; while the catalog churns the cache is
/// bypassed entirely (counted in Stats::cache_bypasses). Stable-state
/// scan queries additionally share one catalog snapshot per clock tag
/// (Stats::snapshot_reuses) so a burst of hot queries admitted at the
/// same version pays for ONE Snapshot() instead of N.
///
/// Deadlines are checked between request phases: after the queue wait,
/// after the bound phase, and between refine waves. An expired request
/// completes with kDeadlineExpired and whatever partial ranking it had.
class CsjServer {
 public:
  struct Options {
    uint32_t workers = 2;          ///< dedicated worker threads (>= 1)
    size_t queue_capacity = 256;   ///< admission-control bound
    CommunityCatalog::Options catalog;
    /// Enables the versioned hot-query result cache for kTopK requests.
    bool result_cache = false;
    TopKResultCache::Options result_cache_options;
  };

  /// Builds the catalog and starts the workers; the server is accepting
  /// requests when the constructor returns.
  explicit CsjServer(Options options);

  /// Stops accepting, drains queued requests, joins the workers.
  ~CsjServer();

  CsjServer(const CsjServer&) = delete;
  CsjServer& operator=(const CsjServer&) = delete;

  /// Admission: enqueues the request and hands back the future its
  /// response will arrive on. Returns false — and completes no future —
  /// when the queue is full or the server is shutting down; the caller
  /// sheds the request (counted in stats().rejected).
  bool Submit(ServeRequest request, std::future<ServeResponse>* response);

  /// Callback-flavored admission for push-style callers (the network
  /// front end): on completion the executing WORKER thread invokes
  /// `done(response)` instead of fulfilling a future. Same admission
  /// contract: false = rejected, `done` will never be called.
  bool Submit(ServeRequest request,
              std::function<void(ServeResponse)> done);

  /// Convenience for tests and simple callers: Submit + wait. A rejected
  /// request returns status kRejected instead of blocking.
  ServeResponse SubmitAndWait(ServeRequest request);

  /// Stops accepting new requests, drains the queue, joins the workers.
  /// Idempotent; the destructor calls it.
  void Shutdown();

  const CommunityCatalog& catalog() const { return *catalog_; }
  CommunityCatalog& catalog() { return *catalog_; }
  const TopKSimilarService& topk() const { return *topk_; }
  /// The versioned result cache, or nullptr when Options::result_cache
  /// was off.
  const TopKResultCache* result_cache() const { return cache_.get(); }

  struct Stats {
    uint64_t accepted = 0;
    uint64_t rejected = 0;
    uint64_t completed = 0;
    uint64_t deadline_expired = 0;
    /// Deepest backlog the admission queue ever reached.
    uint64_t queue_high_water = 0;
    /// Stable-state scan queries served from a shared catalog snapshot.
    uint64_t snapshot_reuses = 0;
    /// kTopK requests that skipped the result cache because the catalog
    /// mutation clock was unstable around them.
    uint64_t cache_bypasses = 0;
    /// Result-cache counters (all zero when the cache is off).
    TopKResultCache::Stats result_cache;
  };
  Stats GetStats() const;

  /// Latency summary of completed requests with `status`, measured
  /// admission -> completion (what the client experienced). Quantiles
  /// come from a log-scale histogram (~2% relative resolution from 100 ns
  /// to 100 s); all zeros when no request finished with that status.
  struct StatusLatency {
    uint64_t count = 0;
    double p50_ms = 0.0;
    double p95_ms = 0.0;
    double p99_ms = 0.0;
    double max_ms = 0.0;
  };
  StatusLatency LatencyOf(ServeStatus status) const;

 private:
  struct QueuedRequest {
    ServeRequest request;
    std::promise<ServeResponse> promise;
    /// Non-null for callback-flavored submits; the promise is unused then.
    std::function<void(ServeResponse)> callback;
    std::chrono::steady_clock::time_point admitted;
    std::optional<Deadline> deadline;
  };

  /// One per-status latency recorder (log10-ms domain).
  struct LatencyRecorder {
    mutable std::mutex mu;
    util::Histogram log_ms{-4.0, 5.0, 1024};
    double max_ms = 0.0;
    uint64_t count = 0;
  };

  bool Enqueue(QueuedRequest queued);
  void WorkerLoop();
  ServeResponse Execute(QueuedRequest& queued);
  void ExecuteTopK(const QueuedRequest& queued, ServeResponse* response);
  TopKResult QueryStableScan(const Community& query,
                             const TopKOptions& options,
                             const std::optional<Deadline>& deadline,
                             bool stable, uint64_t clock_tag);
  void RecordLatency(ServeStatus status, double seconds);

  Options options_;
  std::unique_ptr<CommunityCatalog> catalog_;
  std::unique_ptr<TopKSimilarService> topk_;
  std::unique_ptr<TopKResultCache> cache_;
  std::unique_ptr<BoundedRequestQueue<QueuedRequest>> queue_;
  std::vector<std::thread> workers_;
  /// Shared catalog snapshot for stable-state scan queries: valid while
  /// the mutation clock still reads `snapshot_tag_`.
  std::mutex snapshot_mu_;
  uint64_t snapshot_tag_ = 0;
  std::shared_ptr<const std::vector<CatalogEntry>> snapshot_;
  /// Indexed by ServeStatus (kRejected's slot stays empty: rejected
  /// requests never execute, the client measures those).
  LatencyRecorder latency_[4];
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> deadline_expired_{0};
  std::atomic<uint64_t> sequence_{0};
  std::atomic<uint64_t> snapshot_reuses_{0};
  std::atomic<uint64_t> cache_bypasses_{0};
  std::atomic<bool> shutdown_{false};
};

}  // namespace csj::service

#endif  // CSJ_SERVICE_SERVER_H_
