#ifndef CSJ_SERVICE_SERVER_H_
#define CSJ_SERVICE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "core/community.h"
#include "service/catalog.h"
#include "service/request_queue.h"
#include "service/topk.h"

namespace csj::service {

/// What a request asks the server to do.
enum class RequestKind : uint8_t {
  kTopK,    ///< rank the catalog against `query`
  kUpsert,  ///< install `query` as catalog entry `id`
  kRemove,  ///< drop catalog entry `id`
};

enum class ServeStatus : uint8_t {
  kOk,
  kRejected,         ///< admission control: queue full (never executed)
  kDeadlineExpired,  ///< ran out of budget between phases
  kNotFound,         ///< kRemove of an absent id
};

const char* ServeStatusName(ServeStatus status);

struct ServeRequest {
  RequestKind kind = RequestKind::kTopK;
  /// Target entry for kUpsert / kRemove.
  uint64_t id = 0;
  /// The query community (kTopK) or the payload to install (kUpsert).
  /// Shared so producers can reuse one community across many requests
  /// without copying megabytes per request.
  std::shared_ptr<const Community> community;
  /// Per-request top-k parameters (kTopK only).
  TopKOptions topk;
  /// Latency budget in seconds, measured from ADMISSION (TryPush), so
  /// queueing time counts against it — a request stuck behind a burst
  /// expires instead of consuming refine work nobody is waiting for.
  /// 0 = no deadline.
  double deadline_seconds = 0.0;
};

struct ServeResponse {
  ServeStatus status = ServeStatus::kOk;
  /// kTopK result (possibly partial when status == kDeadlineExpired).
  TopKResult topk;
  /// Version installed by kUpsert.
  uint64_t version = 0;
  /// Seconds from admission to execution start (queue wait) and to
  /// completion (what the client experienced).
  double queue_seconds = 0.0;
  double total_seconds = 0.0;
};

/// The long-running serving front end: a bounded request queue feeding a
/// fixed crew of worker threads that execute against the shared
/// CommunityCatalog / TopKSimilarService.
///
/// Threading model: producers (any thread) call Submit, which either
/// admits the request — returning a future the producer may wait on — or
/// rejects it immediately when the queue is full. Workers pop requests
/// and execute them one at a time; per-request parallelism comes from
/// TopKOptions::query_threads (usually 1 under heavy traffic — the
/// workers ARE the parallelism), catalog mutations are safe by the
/// catalog's own sharded locking.
///
/// Deadlines are checked between request phases: after the queue wait,
/// after the bound phase, and between refine waves. An expired request
/// completes with kDeadlineExpired and whatever partial ranking it had.
class CsjServer {
 public:
  struct Options {
    uint32_t workers = 2;          ///< dedicated worker threads (>= 1)
    size_t queue_capacity = 256;   ///< admission-control bound
    CommunityCatalog::Options catalog;
  };

  /// Builds the catalog and starts the workers; the server is accepting
  /// requests when the constructor returns.
  explicit CsjServer(Options options);

  /// Stops accepting, drains queued requests, joins the workers.
  ~CsjServer();

  CsjServer(const CsjServer&) = delete;
  CsjServer& operator=(const CsjServer&) = delete;

  /// Admission: enqueues the request and hands back the future its
  /// response will arrive on. Returns false — and completes no future —
  /// when the queue is full or the server is shutting down; the caller
  /// sheds the request (counted in stats().rejected).
  bool Submit(ServeRequest request, std::future<ServeResponse>* response);

  /// Convenience for tests and simple callers: Submit + wait. A rejected
  /// request returns status kRejected instead of blocking.
  ServeResponse SubmitAndWait(ServeRequest request);

  /// Stops accepting new requests, drains the queue, joins the workers.
  /// Idempotent; the destructor calls it.
  void Shutdown();

  const CommunityCatalog& catalog() const { return *catalog_; }
  CommunityCatalog& catalog() { return *catalog_; }
  const TopKSimilarService& topk() const { return *topk_; }

  struct Stats {
    uint64_t accepted = 0;
    uint64_t rejected = 0;
    uint64_t completed = 0;
    uint64_t deadline_expired = 0;
  };
  Stats GetStats() const;

 private:
  struct QueuedRequest {
    ServeRequest request;
    std::promise<ServeResponse> promise;
    std::chrono::steady_clock::time_point admitted;
    std::optional<Deadline> deadline;
  };

  void WorkerLoop();
  ServeResponse Execute(QueuedRequest& queued);

  Options options_;
  std::unique_ptr<CommunityCatalog> catalog_;
  std::unique_ptr<TopKSimilarService> topk_;
  std::unique_ptr<BoundedRequestQueue<QueuedRequest>> queue_;
  std::vector<std::thread> workers_;
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> deadline_expired_{0};
  std::atomic<bool> shutdown_{false};
};

}  // namespace csj::service

#endif  // CSJ_SERVICE_SERVER_H_
