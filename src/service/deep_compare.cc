#include "service/deep_compare.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/signature.h"

namespace csj::service {

bool CatalogsIdentical(const CommunityCatalog& lhs,
                       const CommunityCatalog& rhs, Epsilon eps,
                       double threshold) {
  const std::vector<CatalogEntry> lhs_snapshot = lhs.Snapshot();
  const std::vector<CatalogEntry> rhs_snapshot = rhs.Snapshot();
  if (lhs_snapshot.size() != rhs_snapshot.size()) return false;
  for (size_t i = 0; i < lhs_snapshot.size(); ++i) {
    const CatalogEntry& a = lhs_snapshot[i];
    const CatalogEntry& b = rhs_snapshot[i];
    if (a.id != b.id || a.version != b.version ||
        a.digest.fingerprint != b.digest.fingerprint ||
        a.digest.max_counter != b.digest.max_counter) {
      return false;
    }
    if (a.community->d() != b.community->d() ||
        a.community->size() != b.community->size()) {
      return false;
    }
    const auto a_flat = a.community->flat();
    const auto b_flat = b.community->flat();
    if (!std::equal(a_flat.begin(), a_flat.end(), b_flat.begin(),
                    b_flat.end())) {
      return false;
    }
    if ((a.signature == nullptr) != (b.signature == nullptr)) return false;
    if (a.signature != nullptr) {
      if (a.signature->sampled() != b.signature->sampled()) return false;
      const auto a_table = a.signature->table();
      const auto b_table = b.signature->table();
      if (!std::equal(a_table.begin(), a_table.end(), b_table.begin(),
                      b_table.end())) {
        return false;
      }
    }
  }
  const SignatureIndex* lhs_index = lhs.signature_index();
  const SignatureIndex* rhs_index = rhs.signature_index();
  if ((lhs_index == nullptr) != (rhs_index == nullptr)) return false;
  if (lhs_index == nullptr || lhs_snapshot.empty()) return true;
  if (lhs_index->shards() != rhs_index->shards()) return false;
  for (uint32_t q = 0; q < 3; ++q) {
    const CatalogEntry& query_entry =
        lhs_snapshot[(static_cast<size_t>(q) * lhs_snapshot.size()) / 3];
    const CommunitySignature query_sig(*query_entry.community,
                                       lhs_index->options());
    const std::vector<Dim> order = SignatureProbeOrder(query_sig);
    for (const double tau : {0.0, threshold}) {
      SignatureIndex::ProbeQuery probe;
      probe.signature = &query_sig;
      probe.eps = eps;
      probe.threshold = tau;
      probe.probe_order = order;
      for (uint32_t shard = 0; shard < lhs_index->shards(); ++shard) {
        std::vector<PrescreenCandidate> lhs_out, rhs_out;
        PrescreenStats lhs_stats, rhs_stats;
        lhs_index->ProbeShard(shard, probe, &lhs_out, &lhs_stats);
        rhs_index->ProbeShard(shard, probe, &rhs_out, &rhs_stats);
        if (lhs_out.size() != rhs_out.size()) return false;
        // Emission order follows within-shard slot order, which is an
        // insertion-history artifact (replaces and swap-removes permute
        // it); a checkpoint canonicalizes slots to ascending id. The
        // serving contract is the candidate SET, so compare it as one.
        const auto by_id = [](const PrescreenCandidate& a,
                              const PrescreenCandidate& b) {
          return a.id < b.id;
        };
        std::sort(lhs_out.begin(), lhs_out.end(), by_id);
        std::sort(rhs_out.begin(), rhs_out.end(), by_id);
        for (size_t i = 0; i < lhs_out.size(); ++i) {
          if (lhs_out[i].id != rhs_out[i].id ||
              lhs_out[i].version != rhs_out[i].version) {
            return false;
          }
        }
        // Per-entry verdict counts are layout-invariant and must agree
        // exactly. packs_skipped is NOT compared: like slot order above
        // it is a pack-grouping artifact of insertion history — a
        // catalog restored from a sealed segment groups canonically
        // (ascending id) while the live one groups by mutation order,
        // so whole-pack skips can split differently even though every
        // per-entry outcome is identical.
        if (lhs_stats.examined != rhs_stats.examined ||
            lhs_stats.passed != rhs_stats.passed ||
            lhs_stats.skipped_cap != rhs_stats.skipped_cap ||
            lhs_stats.skipped_inadmissible != rhs_stats.skipped_inadmissible ||
            lhs_stats.skipped_dim != rhs_stats.skipped_dim) {
          return false;
        }
      }
    }
  }
  return true;
}

}  // namespace csj::service
