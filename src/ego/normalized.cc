#include "ego/normalized.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"

namespace csj::ego {

std::vector<Dim> IdentityOrder(Dim d) {
  std::vector<Dim> order(d);
  std::iota(order.begin(), order.end(), 0u);
  return order;
}

NormalizedData Normalize(const Community& community, Count max_count,
                         Epsilon eps, const std::vector<Dim>& dim_order) {
  CSJ_CHECK_GT(max_count, 0u);
  CSJ_CHECK_GT(eps, 0u);
  CSJ_CHECK_EQ(dim_order.size(), community.d());

  NormalizedData out;
  out.d = community.d();
  const float inv_max = 1.0f / static_cast<float>(max_count);
  out.eps_norm = static_cast<float>(eps) * inv_max;

  const uint32_t n = community.size();
  std::vector<float> unsorted(static_cast<size_t>(n) * out.d);
  for (UserId u = 0; u < n; ++u) {
    const std::span<const Count> row = community.User(u);
    float* dst = unsorted.data() + static_cast<size_t>(u) * out.d;
    for (Dim k = 0; k < out.d; ++k) {
      dst[k] = static_cast<float>(row[dim_order[k]]) * inv_max;
    }
  }

  // Epsilon Grid Order: lexicographic by per-dimension cell index.
  std::vector<uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  const float eps_norm = out.eps_norm;
  const Dim d = out.d;
  std::sort(perm.begin(), perm.end(), [&](uint32_t x, uint32_t y) {
    const float* rx = unsorted.data() + static_cast<size_t>(x) * d;
    const float* ry = unsorted.data() + static_cast<size_t>(y) * d;
    for (Dim k = 0; k < d; ++k) {
      const int32_t cx = CellOf(rx[k], eps_norm);
      const int32_t cy = CellOf(ry[k], eps_norm);
      if (cx != cy) return cx < cy;
    }
    return x < y;
  });

  out.flat.resize(unsorted.size());
  out.ids.resize(n);
  for (uint32_t row = 0; row < n; ++row) {
    const uint32_t u = perm[row];
    out.ids[row] = u;
    std::copy_n(unsorted.data() + static_cast<size_t>(u) * d, d,
                out.flat.data() + static_cast<size_t>(row) * d);
  }
  return out;
}

CellMatrix CellsOf(const NormalizedData& data) {
  CellMatrix matrix;
  matrix.d = data.d;
  matrix.cells.resize(data.flat.size());
  for (size_t i = 0; i < data.flat.size(); ++i) {
    matrix.cells[i] = CellOf(data.flat[i], data.eps_norm);
  }
  return matrix;
}

}  // namespace csj::ego
