#ifndef CSJ_EGO_EGO_JOIN_H_
#define CSJ_EGO_EGO_JOIN_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "ego/normalized.h"

namespace csj::ego {

/// Counters describing one EGO-join execution.
struct EgoStats {
  uint64_t node_pair_visits = 0;   ///< recursion (B-node, A-node) visits
  uint64_t strategy_prunes = 0;    ///< pairs cut by the EGO strategy
  uint64_t leaf_joins = 0;         ///< nested-loop leaf invocations
};

/// Binary segment tree over the rows of an EGO-sorted dataset, with each
/// node's bounding box in epsilon-cell space. This materializes Algorithm
/// SuperEGO's recursive Split(): node == segment, children == halves,
/// leaves == segments smaller than the threshold t. Precomputing boxes
/// bottom-up lets the EGO strategy test any (B-segment, A-segment) pair in
/// O(d) without rescanning rows. Works over any CellMatrix — the float
/// grid of the paper's SuperEGO and the integer grid of the hybrid
/// extension alike.
class SegmentTree {
 public:
  /// Builds the tree; segments of fewer than `threshold` rows become
  /// leaves (`threshold` is the paper's parameter t, >= 2).
  SegmentTree(const CellMatrix& cells, uint32_t threshold);

  struct Node {
    uint32_t lo;        ///< first row (inclusive)
    uint32_t hi;        ///< last row (exclusive)
    int32_t left = -1;  ///< child node ids; -1 for leaves
    int32_t right = -1;

    bool IsLeaf() const { return left < 0; }
  };

  bool empty() const { return nodes_.empty(); }
  const Node& node(int32_t id) const { return nodes_[static_cast<size_t>(id)]; }
  int32_t root() const { return 0; }

  /// Per-dimension cell bounds of node `id`.
  const int32_t* MinCells(int32_t id) const {
    return boxes_.data() + static_cast<size_t>(id) * 2 * d_;
  }
  const int32_t* MaxCells(int32_t id) const {
    return boxes_.data() + (static_cast<size_t>(id) * 2 + 1) * d_;
  }

  Dim d() const { return d_; }

  /// Approximate heap footprint (the encoding cache's memory accounting).
  size_t MemoryBytes() const {
    return nodes_.capacity() * sizeof(Node) +
           boxes_.capacity() * sizeof(int32_t);
  }

 private:
  int32_t Build(const CellMatrix& cells, uint32_t threshold, uint32_t lo,
                uint32_t hi);

  Dim d_;
  std::vector<Node> nodes_;
  std::vector<int32_t> boxes_;  // per node: d min-cells then d max-cells
};

/// The EGO strategy: true when the two boxes are separated by at least two
/// cells in some dimension, certifying that no cross pair can eps-match
/// (a match implies cell distance <= 1 in every dimension).
bool EgoStrategySeparated(const SegmentTree& tree_b, int32_t node_b,
                          const SegmentTree& tree_a, int32_t node_a);

/// Callback joining one leaf pair: row ranges [b_lo, b_hi) x [a_lo, a_hi).
using LeafJoinFn =
    std::function<void(uint32_t b_lo, uint32_t b_hi, uint32_t a_lo,
                       uint32_t a_hi)>;

/// Algorithm SuperEGO's divide-and-conquer driver: recursively descends
/// the two segment trees, applying the EGO strategy at every node pair and
/// invoking `leaf_join` on surviving leaf pairs (the NestedLoopJoin role —
/// the approximate and exact CSJ adapters plug in different bodies).
/// Leaf pairs are visited in (B-range, A-range) lexicographic order, which
/// fixes the approximate variant's greedy outcome deterministically.
void EgoJoin(const SegmentTree& tree_b, const SegmentTree& tree_a,
             const LeafJoinFn& leaf_join, EgoStats* stats);

}  // namespace csj::ego

#endif  // CSJ_EGO_EGO_JOIN_H_
