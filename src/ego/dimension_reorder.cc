#include "ego/dimension_reorder.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/histogram.h"
#include "util/logging.h"

namespace csj::ego {

std::vector<Dim> ComputeDimensionOrder(const Community& b, const Community& a,
                                       Epsilon eps, Count max_count,
                                       uint32_t max_buckets) {
  CSJ_CHECK_EQ(b.d(), a.d());
  CSJ_CHECK_GT(max_count, 0u);
  const Dim d = b.d();

  // One bucket per epsilon cell, capped: with the cap the buckets are
  // coarser than a cell, which only makes the failure-probability estimate
  // pessimistic uniformly across dimensions — the relative order survives.
  const double cells = static_cast<double>(max_count) / std::max<double>(eps, 1);
  const uint32_t buckets = static_cast<uint32_t>(
      std::clamp<double>(std::ceil(cells), 1.0, max_buckets));

  std::vector<double> failure(d, 1.0);
  for (Dim dim = 0; dim < d; ++dim) {
    util::Histogram histogram(0.0, 1.0, buckets);
    const double inv_max = 1.0 / static_cast<double>(max_count);
    for (UserId u = 0; u < b.size(); ++u) {
      histogram.Add(static_cast<double>(b.User(u)[dim]) * inv_max);
    }
    for (UserId u = 0; u < a.size(); ++u) {
      histogram.Add(static_cast<double>(a.User(u)[dim]) * inv_max);
    }
    failure[dim] = histogram.AdjacencyCollisionProbability();
  }

  std::vector<Dim> order(d);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](Dim x, Dim y) {
    if (failure[x] != failure[y]) return failure[x] < failure[y];
    return x < y;
  });
  return order;
}

}  // namespace csj::ego
