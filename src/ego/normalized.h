#ifndef CSJ_EGO_NORMALIZED_H_
#define CSJ_EGO_NORMALIZED_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/community.h"
#include "core/types.h"

namespace csj::ego {

/// A community converted for SuperEGO consumption: float32 values in
/// [0,1]^d (counters divided by a dataset-wide maximum), dimensions
/// permuted by the reorder step, rows sorted in Epsilon Grid Order.
///
/// float32 is deliberate: it mirrors the paper's "normalized data
/// conversion" whose precision loss is the source of the SuperEGO accuracy
/// gap on VK-like data (counters up to 152,532 with eps = 1 give
/// eps_norm ~ 6.6e-6, so pairs at the exact eps boundary round out of
/// range). See DESIGN.md §6.
struct NormalizedData {
  Dim d = 0;
  float eps_norm = 0.0f;
  std::vector<float> flat;    ///< row-major, n*d, EGO-sorted
  std::vector<UserId> ids;    ///< row -> original user id

  uint32_t size() const { return static_cast<uint32_t>(ids.size()); }
  std::span<const float> Row(uint32_t row) const {
    return {flat.data() + static_cast<size_t>(row) * d, d};
  }
};

/// Epsilon-grid cell index of a normalized coordinate: floor(x/eps_norm).
/// |x - y| <= eps_norm implies the cells differ by at most 1, so a
/// separation of >= 2 cells certifies a non-match — the EGO-strategy test.
inline int32_t CellOf(float x, float eps_norm) {
  return static_cast<int32_t>(x / eps_norm);  // x >= 0: truncation == floor
}

/// SuperEGO's adapted per-dimension join predicate, evaluated entirely in
/// float32 like the original implementation.
inline bool EpsMatchesFloat(std::span<const float> b, std::span<const float> a,
                            float eps_norm) {
  const size_t d = b.size();
  for (size_t i = 0; i < d; ++i) {
    const float diff = b[i] > a[i] ? b[i] - a[i] : a[i] - b[i];
    if (diff > eps_norm) return false;
  }
  return true;
}

/// Normalizes `community` by `max_count`, permutes dimensions by
/// `dim_order` (dim_order[k] = source dimension of output dimension k) and
/// EGO-sorts the rows (lexicographic by cell coordinates, ties by original
/// id for determinism).
NormalizedData Normalize(const Community& community, Count max_count,
                         Epsilon eps, const std::vector<Dim>& dim_order);

/// Row-major matrix of epsilon-grid cell indices — the common currency of
/// the EGO machinery. Both grid flavours produce one: the float grid
/// (cells of normalized float32 coordinates) and the integer grid (cells
/// of raw counters, no normalization). SegmentTree consumes it.
struct CellMatrix {
  Dim d = 0;
  std::vector<int32_t> cells;  ///< n*d, row-major

  uint32_t size() const {
    return d == 0 ? 0 : static_cast<uint32_t>(cells.size() / d);
  }
  int32_t Cell(uint32_t row, Dim k) const {
    return cells[static_cast<size_t>(row) * d + k];
  }
};

/// Cell indices of an EGO-sorted normalized dataset.
CellMatrix CellsOf(const NormalizedData& data);

/// Identity dimension order of size d.
std::vector<Dim> IdentityOrder(Dim d);

}  // namespace csj::ego

#endif  // CSJ_EGO_NORMALIZED_H_
