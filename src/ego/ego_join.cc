#include "ego/ego_join.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"

namespace csj::ego {

SegmentTree::SegmentTree(const CellMatrix& cells, uint32_t threshold)
    : d_(cells.d) {
  CSJ_CHECK_GE(threshold, 2u);
  if (cells.size() == 0) return;
  Build(cells, threshold, 0, cells.size());
}

int32_t SegmentTree::Build(const CellMatrix& cells, uint32_t threshold,
                           uint32_t lo, uint32_t hi) {
  const auto id = static_cast<int32_t>(nodes_.size());
  nodes_.push_back(Node{lo, hi, -1, -1});
  boxes_.resize(boxes_.size() + 2 * d_);

  const uint32_t size = hi - lo;
  if (size < threshold) {
    // Leaf: scan rows for the cell-space bounding box.
    int32_t* min_cells = boxes_.data() + static_cast<size_t>(id) * 2 * d_;
    int32_t* max_cells = min_cells + d_;
    std::fill_n(min_cells, d_, std::numeric_limits<int32_t>::max());
    std::fill_n(max_cells, d_, std::numeric_limits<int32_t>::min());
    for (uint32_t row = lo; row < hi; ++row) {
      for (Dim k = 0; k < d_; ++k) {
        const int32_t cell = cells.Cell(row, k);
        min_cells[k] = std::min(min_cells[k], cell);
        max_cells[k] = std::max(max_cells[k], cell);
      }
    }
    return id;
  }

  const uint32_t mid = lo + size / 2;
  const int32_t left = Build(cells, threshold, lo, mid);
  const int32_t right = Build(cells, threshold, mid, hi);
  nodes_[static_cast<size_t>(id)].left = left;
  nodes_[static_cast<size_t>(id)].right = right;

  // Internal box = union of child boxes. Children were built after this
  // node so their boxes are final here.
  int32_t* min_cells = boxes_.data() + static_cast<size_t>(id) * 2 * d_;
  int32_t* max_cells = min_cells + d_;
  const int32_t* left_min = MinCells(left);
  const int32_t* left_max = MaxCells(left);
  const int32_t* right_min = MinCells(right);
  const int32_t* right_max = MaxCells(right);
  for (Dim k = 0; k < d_; ++k) {
    min_cells[k] = std::min(left_min[k], right_min[k]);
    max_cells[k] = std::max(left_max[k], right_max[k]);
  }
  return id;
}

bool EgoStrategySeparated(const SegmentTree& tree_b, int32_t node_b,
                          const SegmentTree& tree_a, int32_t node_a) {
  const Dim d = tree_b.d();
  const int32_t* b_min = tree_b.MinCells(node_b);
  const int32_t* b_max = tree_b.MaxCells(node_b);
  const int32_t* a_min = tree_a.MinCells(node_a);
  const int32_t* a_max = tree_a.MaxCells(node_a);
  for (Dim k = 0; k < d; ++k) {
    // Separation by >= 2 cells: even the closest cells in this dimension
    // cannot hold an eps-matching pair.
    if (b_min[k] > a_max[k] + 1 || a_min[k] > b_max[k] + 1) return true;
  }
  return false;
}

namespace {

void JoinRecursive(const SegmentTree& tree_b, int32_t node_b,
                   const SegmentTree& tree_a, int32_t node_a,
                   const LeafJoinFn& leaf_join, EgoStats* stats) {
  ++stats->node_pair_visits;
  if (EgoStrategySeparated(tree_b, node_b, tree_a, node_a)) {
    ++stats->strategy_prunes;
    return;
  }
  const SegmentTree::Node& nb = tree_b.node(node_b);
  const SegmentTree::Node& na = tree_a.node(node_a);
  if (nb.IsLeaf() && na.IsLeaf()) {
    ++stats->leaf_joins;
    leaf_join(nb.lo, nb.hi, na.lo, na.hi);
    return;
  }
  if (nb.IsLeaf()) {
    JoinRecursive(tree_b, node_b, tree_a, na.left, leaf_join, stats);
    JoinRecursive(tree_b, node_b, tree_a, na.right, leaf_join, stats);
    return;
  }
  if (na.IsLeaf()) {
    JoinRecursive(tree_b, nb.left, tree_a, node_a, leaf_join, stats);
    JoinRecursive(tree_b, nb.right, tree_a, node_a, leaf_join, stats);
    return;
  }
  JoinRecursive(tree_b, nb.left, tree_a, na.left, leaf_join, stats);
  JoinRecursive(tree_b, nb.left, tree_a, na.right, leaf_join, stats);
  JoinRecursive(tree_b, nb.right, tree_a, na.left, leaf_join, stats);
  JoinRecursive(tree_b, nb.right, tree_a, na.right, leaf_join, stats);
}

}  // namespace

void EgoJoin(const SegmentTree& tree_b, const SegmentTree& tree_a,
             const LeafJoinFn& leaf_join, EgoStats* stats) {
  if (tree_b.empty() || tree_a.empty()) return;
  JoinRecursive(tree_b, tree_b.root(), tree_a, tree_a.root(), leaf_join,
                stats);
}

}  // namespace csj::ego
