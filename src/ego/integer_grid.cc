#include "ego/integer_grid.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"

namespace csj::ego {

IntegerGridData BuildIntegerGrid(const Community& community, Epsilon eps,
                                 const std::vector<Dim>& dim_order) {
  CSJ_CHECK_GE(eps, 1u);
  CSJ_CHECK_EQ(dim_order.size(), community.d());

  IntegerGridData out;
  out.d = community.d();
  out.eps = eps;

  const uint32_t n = community.size();
  std::vector<Count> unsorted(static_cast<size_t>(n) * out.d);
  for (UserId u = 0; u < n; ++u) {
    const std::span<const Count> row = community.User(u);
    Count* dst = unsorted.data() + static_cast<size_t>(u) * out.d;
    for (Dim k = 0; k < out.d; ++k) dst[k] = row[dim_order[k]];
  }

  std::vector<uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  const Dim d = out.d;
  std::sort(perm.begin(), perm.end(), [&](uint32_t x, uint32_t y) {
    const Count* rx = unsorted.data() + static_cast<size_t>(x) * d;
    const Count* ry = unsorted.data() + static_cast<size_t>(y) * d;
    for (Dim k = 0; k < d; ++k) {
      const int32_t cx = IntegerCellOf(rx[k], eps);
      const int32_t cy = IntegerCellOf(ry[k], eps);
      if (cx != cy) return cx < cy;
    }
    return x < y;
  });

  out.flat.resize(unsorted.size());
  out.ids.resize(n);
  for (uint32_t row = 0; row < n; ++row) {
    const uint32_t u = perm[row];
    out.ids[row] = u;
    std::copy_n(unsorted.data() + static_cast<size_t>(u) * d, d,
                out.flat.data() + static_cast<size_t>(row) * d);
  }
  return out;
}

CellMatrix CellsOf(const IntegerGridData& data) {
  CellMatrix matrix;
  matrix.d = data.d;
  matrix.cells.resize(data.flat.size());
  for (size_t i = 0; i < data.flat.size(); ++i) {
    matrix.cells[i] = IntegerCellOf(data.flat[i], data.eps);
  }
  return matrix;
}

}  // namespace csj::ego
