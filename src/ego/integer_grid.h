#ifndef CSJ_EGO_INTEGER_GRID_H_
#define CSJ_EGO_INTEGER_GRID_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/community.h"
#include "core/types.h"
#include "ego/normalized.h"

namespace csj::ego {

/// A community prepared for the INTEGER-grid EGO join: dimensions
/// permuted, rows EGO-sorted by the integer cell index `counter / eps` —
/// no normalization, no floats, no precision loss.
///
/// This realizes the paper's §6.2 hypothetical ("even if there was a way
/// SuperEGO to work for numeric (non-normalized) data"): the recursion
/// and EGO strategy operate on integer cells while the leaf predicate is
/// the exact integer-domain EpsilonMatches, so the hybrid methods built
/// on top are as accurate as MinMax/Baseline AND enjoy SuperEGO's
/// divide-and-conquer pruning.
struct IntegerGridData {
  Dim d = 0;
  Epsilon eps = 1;
  std::vector<Count> flat;  ///< row-major, n*d, dims permuted, EGO-sorted
  std::vector<UserId> ids;  ///< row -> original user id

  uint32_t size() const { return static_cast<uint32_t>(ids.size()); }
  std::span<const Count> Row(uint32_t row) const {
    return {flat.data() + static_cast<size_t>(row) * d, d};
  }
};

/// Integer epsilon-grid cell of a counter: counter / eps (eps >= 1).
/// |x - y| <= eps still implies a cell distance of at most 1, so the EGO
/// strategy's >= 2-cells separation test stays exact — with no rounding
/// involved at all.
inline int32_t IntegerCellOf(Count value, Epsilon eps) {
  return static_cast<int32_t>(value / eps);
}

/// Builds the integer grid for `community` with dimension order
/// `dim_order` (see Normalize for the convention). eps must be >= 1.
IntegerGridData BuildIntegerGrid(const Community& community, Epsilon eps,
                                 const std::vector<Dim>& dim_order);

/// Cell indices of an EGO-sorted integer-grid dataset.
CellMatrix CellsOf(const IntegerGridData& data);

}  // namespace csj::ego

#endif  // CSJ_EGO_INTEGER_GRID_H_
