#ifndef CSJ_EGO_DIMENSION_REORDER_H_
#define CSJ_EGO_DIMENSION_REORDER_H_

#include <vector>

#include "core/community.h"
#include "core/types.h"

namespace csj::ego {

/// SuperEGO's data-driven dimension reordering (Kalashnikov, VLDBJ'13).
///
/// For each dimension, builds a histogram of the normalized values of both
/// communities with bucket width ~= eps_norm and estimates the probability
/// that two random values land within one cell of each other — the chance
/// that an epsilon-grid test FAILS to prune on that dimension. Dimensions
/// are then ordered ascending by that failure probability so the most
/// selective dimensions come first, which is where the EGO sort and the
/// EGO strategy get their pruning power.
///
/// `max_count` is the normalization denominator (dataset-wide maximum);
/// bucket count is capped at `max_buckets` to bound memory when eps_norm
/// is tiny (the ordering only needs relative selectivity).
std::vector<Dim> ComputeDimensionOrder(const Community& b, const Community& a,
                                       Epsilon eps, Count max_count,
                                       uint32_t max_buckets = 4096);

}  // namespace csj::ego

#endif  // CSJ_EGO_DIMENSION_REORDER_H_
