#include "evolve/drift.h"

#include <algorithm>
#include <string>
#include <utility>

#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace csj::evolve {

namespace {

/// Generation-time membership simulation of one live community: just
/// enough state to mint valid events (live keys, next fresh key, the
/// frozen source buffer join payloads are sampled from).
struct SimCommunity {
  std::shared_ptr<const Community> source;
  std::vector<uint64_t> live_keys;
  uint64_t next_key = 0;
  bool is_anchor = false;
};

}  // namespace

DriftModel::DriftModel(DriftOptions options)
    : options_(std::move(options)), workload_(options_.base) {
  options_.quiesce_every = std::max(options_.quiesce_every, 1u);
  options_.min_community_size = std::max(options_.min_community_size, 1u);
  options_.min_catalog_size = std::max(options_.min_catalog_size, 1u);

  std::map<uint64_t, SimCommunity> sims;
  std::vector<uint64_t> live;  // ids eligible for event targeting
  const auto& communities = workload_.communities();
  const uint32_t cluster = std::max(options_.base.cluster_size, 1u);
  for (uint32_t i = 0; i < communities.size(); ++i) {
    const uint64_t id = i + 1;
    SimCommunity sim;
    sim.source = communities[i];
    sim.live_keys.resize(sim.source->size());
    for (uint64_t key = 0; key < sim.live_keys.size(); ++key) {
      sim.live_keys[key] = key;
    }
    sim.next_key = sim.live_keys.size();
    sim.is_anchor = (i % cluster) == 0;
    sims.emplace(id, std::move(sim));
    live.push_back(id);
  }
  uint64_t next_birth_id = communities.size() + 1;

  util::Rng rng(options_.seed);
  const Epsilon eps = options_.base.eps;

  // Picks a random live id satisfying `pred`, scanning from a random
  // start so the choice stays uniform-ish without ever failing while a
  // valid target exists. Returns the index into `live`, or -1.
  const auto pick_where = [&](auto&& pred) -> int64_t {
    if (live.empty()) return -1;
    const size_t start = static_cast<size_t>(rng.Below(live.size()));
    for (size_t off = 0; off < live.size(); ++off) {
      const size_t idx = (start + off) % live.size();
      if (pred(live[idx])) return static_cast<int64_t>(idx);
    }
    return -1;
  };

  const auto make_join = [&]() -> DriftEvent {
    const int64_t idx = pick_where([](uint64_t) { return true; });
    CSJ_CHECK(idx >= 0);
    const uint64_t id = live[static_cast<size_t>(idx)];
    SimCommunity& sim = sims.at(id);
    DriftEvent event;
    event.kind = DriftEventKind::kUserJoin;
    event.community_id = id;
    event.user_key = sim.next_key++;
    // Payload: a copy of a random existing profile, nudged on two random
    // dimensions by up to eps+1 — close enough to keep eps-matching
    // interesting, far enough to move similarities.
    const Community& src = *sim.source;
    const auto row = src.User(static_cast<UserId>(rng.Below(src.size())));
    event.user.assign(row.begin(), row.end());
    for (int j = 0; j < 2; ++j) {
      const Dim dim = static_cast<Dim>(rng.Below(src.d()));
      const int64_t delta =
          static_cast<int64_t>(rng.Below(static_cast<uint64_t>(eps) + 2)) *
          (rng.Bernoulli(0.5) ? 1 : -1);
      const int64_t value = static_cast<int64_t>(event.user[dim]) + delta;
      event.user[dim] = static_cast<Count>(std::max<int64_t>(0, value));
    }
    sim.live_keys.push_back(event.user_key);
    return event;
  };

  const double weights[5] = {options_.join_weight, options_.leave_weight,
                             options_.decay_weight, options_.birth_weight,
                             options_.death_weight};
  double total_weight = 0.0;
  for (const double w : weights) total_weight += std::max(w, 0.0);
  CSJ_CHECK(total_weight > 0.0) << "drift event mix has no mass";

  trace_.reserve(options_.events);
  for (uint32_t e = 0; e < options_.events; ++e) {
    const double roll = rng.NextDouble() * total_weight;
    double cut = std::max(weights[0], 0.0);
    int kind = 0;
    while (kind < 4 && roll >= cut) {
      ++kind;
      cut += std::max(weights[kind], 0.0);
    }
    switch (kind) {
      case 1: {  // leave
        const int64_t idx = pick_where([&](uint64_t id) {
          return sims.at(id).live_keys.size() > options_.min_community_size;
        });
        if (idx < 0) {
          trace_.push_back(make_join());
          break;
        }
        const uint64_t id = live[static_cast<size_t>(idx)];
        SimCommunity& sim = sims.at(id);
        const size_t slot = static_cast<size_t>(rng.Below(sim.live_keys.size()));
        DriftEvent event;
        event.kind = DriftEventKind::kUserLeave;
        event.community_id = id;
        event.user_key = sim.live_keys[slot];
        sim.live_keys[slot] = sim.live_keys.back();
        sim.live_keys.pop_back();
        trace_.push_back(std::move(event));
        break;
      }
      case 2: {  // decay
        const int64_t idx = pick_where([](uint64_t) { return true; });
        CSJ_CHECK(idx >= 0);
        DriftEvent event;
        event.kind = DriftEventKind::kDecay;
        event.community_id = live[static_cast<size_t>(idx)];
        event.decay_factor = options_.decay_factor;
        trace_.push_back(std::move(event));
        break;
      }
      case 3: {  // birth
        DriftEvent event;
        event.kind = DriftEventKind::kBirth;
        event.community_id = next_birth_id++;
        event.born = workload_.MintAgainstAnchor(rng, &event.anchor_id);
        SimCommunity sim;
        sim.source = event.born;
        sim.live_keys.resize(sim.source->size());
        for (uint64_t key = 0; key < sim.live_keys.size(); ++key) {
          sim.live_keys[key] = key;
        }
        sim.next_key = sim.live_keys.size();
        sims.emplace(event.community_id, std::move(sim));
        live.push_back(event.community_id);
        trace_.push_back(std::move(event));
        break;
      }
      case 4: {  // death
        if (live.size() <= options_.min_catalog_size) {
          trace_.push_back(make_join());
          break;
        }
        const int64_t idx = pick_where(
            [&](uint64_t id) { return !sims.at(id).is_anchor; });
        if (idx < 0) {
          trace_.push_back(make_join());
          break;
        }
        const uint64_t id = live[static_cast<size_t>(idx)];
        DriftEvent event;
        event.kind = DriftEventKind::kDeath;
        event.community_id = id;
        sims.erase(id);
        live[static_cast<size_t>(idx)] = live.back();
        live.pop_back();
        trace_.push_back(std::move(event));
        break;
      }
      default:
        trace_.push_back(make_join());
        break;
    }
  }
}

uint32_t DriftModel::epochs() const {
  return static_cast<uint32_t>(
      (trace_.size() + options_.quiesce_every - 1) / options_.quiesce_every);
}

std::span<const DriftEvent> DriftModel::epoch(uint32_t e) const {
  const size_t begin = static_cast<size_t>(e) * options_.quiesce_every;
  CSJ_CHECK(begin < trace_.size()) << "epoch out of range";
  const size_t end = std::min(begin + options_.quiesce_every, trace_.size());
  return std::span<const DriftEvent>(trace_.data() + begin, end - begin);
}

uint64_t DriftModel::AnchorOf(uint64_t base_id) const {
  CSJ_CHECK(base_id >= 1 && base_id <= workload_.communities().size());
  const uint64_t index = base_id - 1;
  const uint32_t cluster = std::max(options_.base.cluster_size, 1u);
  const uint64_t anchor_index = index - index % cluster;
  return anchor_index == index ? 0 : anchor_index + 1;
}

DriftReplayer::DriftReplayer(const DriftModel* model,
                             service::CommunityCatalog* catalog,
                             Options options)
    : model_(model), catalog_(catalog), options_(options) {
  CSJ_CHECK(model_ != nullptr && catalog_ != nullptr);
  const auto& communities = model_->workload().communities();
  std::vector<std::pair<uint64_t, std::shared_ptr<const Community>>> batch;
  batch.reserve(communities.size());
  for (uint32_t i = 0; i < communities.size(); ++i) {
    batch.emplace_back(i + 1, communities[i]);
  }
  catalog_->BulkLoad(std::move(batch));
  for (uint32_t i = 0; i < communities.size(); ++i) {
    const uint64_t id = i + 1;
    CommunityState state;
    state.frozen = communities[i];
    state.anchor_id = model_->AnchorOf(id);
    states_.emplace(id, std::move(state));
  }
}

void DriftReplayer::AttachSession(CommunityState& state) {
  state.session =
      catalog_->AttachLive(*state.frozen, state.anchor_id,
                           options_.session_join);
  state.handles.clear();
  if (state.session == nullptr) return;  // anchor gone: stay detached
  // AttachLive seeds subscribers from `frozen`'s rows in order, and
  // frozen is built in ascending key order, so handle h belongs to the
  // h-th smallest live key.
  service::LiveCoupleSession::Handle handle = 0;
  if (state.materialized) {
    for (const auto& [key, vec] : state.users) state.handles[key] = handle++;
  } else {
    for (uint64_t key = 0; key < state.frozen->size(); ++key) {
      state.handles[key] = handle++;
    }
  }
}

namespace {

void Materialize(const Community& frozen,
                 std::map<uint64_t, std::vector<Count>>* users) {
  for (UserId u = 0; u < frozen.size(); ++u) {
    const auto row = frozen.User(u);
    (*users)[u] = std::vector<Count>(row.begin(), row.end());
  }
}

}  // namespace

void DriftReplayer::Apply(std::span<const DriftEvent> events) {
  util::Timer timer;
  for (const DriftEvent& event : events) {
    ++events_applied_;
    ++pending_.events;
    switch (event.kind) {
      case DriftEventKind::kBirth: {
        CommunityState state;
        state.frozen = event.born;
        state.anchor_id = event.anchor_id;
        state.dirty = true;  // not yet installed
        auto [it, inserted] =
            states_.emplace(event.community_id, std::move(state));
        CSJ_CHECK(inserted) << "birth of a resident id";
        if (options_.anchor_sessions && it->second.anchor_id != 0) {
          it->second.wants_session = true;
          AttachSession(it->second);
        }
        ++pending_.births;
        break;
      }
      case DriftEventKind::kDeath: {
        const auto it = states_.find(event.community_id);
        CSJ_CHECK(it != states_.end()) << "death of an absent id";
        states_.erase(it);  // session and handles die with the state
        pending_removes_.push_back(event.community_id);
        ++pending_.deaths;
        break;
      }
      case DriftEventKind::kUserJoin:
      case DriftEventKind::kUserLeave:
      case DriftEventKind::kDecay: {
        const auto it = states_.find(event.community_id);
        CSJ_CHECK(it != states_.end()) << "event on an absent id";
        CommunityState& state = it->second;
        if (options_.anchor_sessions && !state.wants_session &&
            state.anchor_id != 0) {
          state.wants_session = true;
          // Lazy first attach is only sound while frozen == live state;
          // a dirty state waits for the quiesce rebuild instead.
          if (!state.dirty) AttachSession(state);
        }
        if (!state.materialized) {
          Materialize(*state.frozen, &state.users);
          state.materialized = true;
        }
        if (event.kind == DriftEventKind::kUserJoin) {
          state.users[event.user_key] = event.user;
          state.dirty = true;
          if (state.session != nullptr) {
            state.handles[event.user_key] =
                state.session->AddSubscriber(event.user);
          }
          ++pending_.joins;
        } else if (event.kind == DriftEventKind::kUserLeave) {
          const size_t erased = state.users.erase(event.user_key);
          CSJ_CHECK(erased == 1) << "leave of an absent user key";
          state.dirty = true;
          if (state.session != nullptr) {
            const auto handle_it = state.handles.find(event.user_key);
            if (handle_it != state.handles.end()) {
              state.session->RemoveSubscriber(handle_it->second);
              state.handles.erase(handle_it);
            }
          }
          ++pending_.leaves;
        } else {  // kDecay
          bool changed = false;
          for (auto& [key, vec] : state.users) {
            for (Count& c : vec) {
              const Count scaled = static_cast<Count>(
                  static_cast<double>(c) * event.decay_factor);
              if (scaled != c) {
                c = scaled;
                changed = true;
              }
            }
          }
          ++pending_.decays;
          if (!changed) {
            // A decay that moved no counter is a true no-op: nothing is
            // installed, no trigger can fire, the session stays exact.
            ++pending_.noop_decays;
          } else {
            state.dirty = true;
            // Wholesale B rewrite — the documented IncrementalCsj policy
            // for this is REBUILD, which the quiesce pass performs.
            state.session.reset();
            state.handles.clear();
          }
        }
        break;
      }
    }
  }
  pending_.apply_seconds += timer.Seconds();
}

std::shared_ptr<const Community> DriftReplayer::Freeze(
    uint64_t id, const CommunityState& state) const {
  if (!state.materialized) return state.frozen;
  Community community(state.frozen->d(), "drift_" + std::to_string(id));
  for (const auto& [key, vec] : state.users) {
    community.AddUser(vec);
  }
  return std::make_shared<const Community>(std::move(community));
}

EpochStats DriftReplayer::Quiesce() {
  util::Timer timer;
  util::ThreadPool& pool = options_.pool != nullptr
                               ? *options_.pool
                               : util::ThreadPool::Global();
  const uint32_t threads = options_.freeze_threads > 0
                               ? options_.freeze_threads
                               : pool.threads();

  // 1. Freeze every dirty community, ascending id, slot-per-index.
  std::vector<uint64_t> dirty_ids;
  std::vector<CommunityState*> dirty_states;
  for (auto& [id, state] : states_) {
    if (state.dirty) {
      dirty_ids.push_back(id);
      dirty_states.push_back(&state);
    }
  }
  const uint32_t n = static_cast<uint32_t>(dirty_ids.size());
  std::vector<std::shared_ptr<const Community>> frozen(n);
  const auto freeze_one = [&](uint32_t i) {
    frozen[i] = Freeze(dirty_ids[i], *dirty_states[i]);
  };
  if (threads > 1 && n > 1) {
    pool.Run(n, freeze_one, threads);
  } else {
    for (uint32_t i = 0; i < n; ++i) freeze_one(i);
  }

  // 2. Install the batch in ascending-id order: versions and the
  // mutation log come out identical at any thread count.
  if (n > 0) {
    std::vector<std::pair<uint64_t, std::shared_ptr<const Community>>> batch;
    batch.reserve(n);
    for (uint32_t i = 0; i < n; ++i) batch.emplace_back(dirty_ids[i], frozen[i]);
    catalog_->BulkLoad(std::move(batch));
    for (uint32_t i = 0; i < n; ++i) {
      dirty_states[i]->frozen = std::move(frozen[i]);
      dirty_states[i]->dirty = false;
    }
    pending_.installs += n;
  }

  // 3. Deaths, ascending id after the installs (same order every run).
  std::sort(pending_removes_.begin(), pending_removes_.end());
  for (const uint64_t id : pending_removes_) {
    if (catalog_->Remove(id)) ++pending_.removes;
  }
  pending_removes_.clear();

  // 4. Re-attach invalidated sessions: a decay dropped the session (B
  // rewritten wholesale), or the pinned anchor entry moved on (the
  // anchor itself drifted — Stale()). Both take the rebuild path.
  if (options_.anchor_sessions) {
    for (auto& [id, state] : states_) {
      if (!state.wants_session) continue;
      if (state.session != nullptr && !state.session->Stale()) continue;
      AttachSession(state);
      if (state.session != nullptr) ++pending_.session_rebuilds;
    }
  }

  pending_.apply_seconds += timer.Seconds();
  EpochStats stats = pending_;
  pending_ = EpochStats{};
  return stats;
}

EpochStats DriftReplayer::ApplyEpoch(uint32_t e) {
  Apply(model_->epoch(e));
  return Quiesce();
}

std::shared_ptr<const Community> DriftReplayer::LiveSnapshot(
    uint64_t id) const {
  const auto it = states_.find(id);
  if (it == states_.end()) return nullptr;
  return it->second.dirty ? Freeze(id, it->second) : it->second.frozen;
}

const service::LiveCoupleSession* DriftReplayer::session(uint64_t id) const {
  const auto it = states_.find(id);
  return it == states_.end() ? nullptr : it->second.session.get();
}

std::vector<uint64_t> DriftReplayer::live_ids() const {
  std::vector<uint64_t> ids;
  ids.reserve(states_.size());
  for (const auto& [id, state] : states_) ids.push_back(id);
  return ids;
}

}  // namespace csj::evolve
