#include "evolve/maintainer.h"

#include <algorithm>
#include <map>
#include <optional>
#include <utility>

#include "core/encoding_cache.h"
#include "core/similarity.h"
#include "core/similarity_bound.h"
#include "util/logging.h"

namespace csj::evolve {

namespace {

/// The top-k total order (similarity desc, id asc) — must match
/// service/topk.cc's RankedLess exactly; the soundness rule below is
/// stated in this order.
struct RankedLess {
  bool operator()(const service::TopKEntry& x,
                  const service::TopKEntry& y) const {
    if (x.similarity != y.similarity) return x.similarity > y.similarity;
    return x.id < y.id;
  }
};

/// Same auto-order rule as the top-k walk (smaller side plays B, the
/// query wins ties) — the re-probe must run the join on the identically
/// oriented couple to reproduce the same similarity bits.
void OrientCouple(const Community& query, const Community& entry,
                  const Community** b, const Community** a) {
  const bool query_is_b = query.size() <= entry.size();
  *b = query_is_b ? &query : &entry;
  *a = query_is_b ? &entry : &query;
}

/// Trigger semantics: the ranked (id, similarity) sequences differ.
/// Versions are excluded by design (see TriggerEvent).
bool SameRanking(const std::vector<service::TopKEntry>& x,
                 const std::vector<service::TopKEntry>& y) {
  if (x.size() != y.size()) return false;
  for (size_t i = 0; i < x.size(); ++i) {
    if (x[i].id != y[i].id || x[i].similarity != y[i].similarity) {
      return false;
    }
  }
  return true;
}

}  // namespace

TopKMaintainer::TopKMaintainer(const service::CommunityCatalog* catalog,
                               Options options)
    : catalog_(catalog), options_(options) {
  CSJ_CHECK(catalog_ != nullptr);
  CSJ_CHECK(options_.service != nullptr);
}

TopKMaintainer::QueryId TopKMaintainer::Register(
    std::shared_ptr<const Community> query,
    const service::TopKOptions& topk) {
  CSJ_CHECK(query != nullptr && !query->empty());
  auto state = std::make_unique<QueryState>();
  state->community = std::move(query);
  state->topk = topk;
  state->topk.k = std::max(state->topk.k, 1u);
  state->fingerprint = DigestCommunity(*state->community).fingerprint;
  std::lock_guard lock(registry_mu_);
  queries_.push_back(std::move(state));
  return static_cast<QueryId>(queries_.size() - 1);
}

TopKMaintainer::RefreshOutcome TopKMaintainer::Refresh(QueryId query) {
  QueryState* state = nullptr;
  {
    std::lock_guard lock(registry_mu_);
    CSJ_CHECK(query < queries_.size()) << "unknown query id";
    state = queries_[query].get();
  }

  RefreshOutcome outcome;
  std::optional<TriggerEvent> trigger;
  {
    std::lock_guard lock(state->mu);
    // Stability probe, same shape as the server's result-cache path:
    // f1 before ANY catalog read, s2 after the last one.
    const uint64_t f1 = catalog_->mutations_finished();

    const uint64_t prior_cursor = state->cursor;
    bool fast = options_.allow_fast_path && state->has_baseline;
    std::vector<service::MutationRecord> records;
    if (fast && !catalog_->ReadMutationsSince(prior_cursor, &records)) {
      // Fell off the log's retention window (or the log is off):
      // resynchronize through a full recompute.
      fast = false;
      log_truncations_.fetch_add(1, std::memory_order_relaxed);
    }

    std::vector<service::TopKEntry> next;
    uint64_t next_cursor = prior_cursor;

    if (fast) {
      // Fold the record suffix to the LAST operation per id: a remove
      // after any upserts means gone; an upsert after anything means the
      // current entry is what counts. std::map keys the fold ascending,
      // so pool construction order is deterministic.
      std::map<uint64_t, const service::MutationRecord*> last_op;
      for (const service::MutationRecord& record : records) {
        last_op[record.id] = &record;
      }
      if (!records.empty()) next_cursor = records.back().seq;

      const uint32_t k = state->topk.k;
      const bool prior_full = state->ranking.size() >= k;
      const service::TopKEntry old_kth =
          prior_full ? state->ranking.back() : service::TopKEntry{};

      // Exact join on the current entry of `id`; nullopt when the entry
      // is gone or the couple is no longer admissible (a fresh recompute
      // would drop it the same way).
      const auto reprobe =
          [&](uint64_t id) -> std::optional<service::TopKEntry> {
        const service::CatalogEntry entry = catalog_->Get(id);
        if (entry.community == nullptr) return std::nullopt;
        if (entry.community->d() != state->community->d()) {
          return std::nullopt;
        }
        const Community* b = nullptr;
        const Community* a = nullptr;
        OrientCouple(*state->community, *entry.community, &b, &a);
        if (!SizesAdmissible(b->size(), a->size())) return std::nullopt;
        const auto refined =
            ComputeSimilarity(state->topk.method, *b, *a, state->topk.join);
        CSJ_CHECK(refined.has_value());
        outcome.reprobed += 1;
        return service::TopKEntry{entry.id, entry.version,
                                  refined->Similarity()};
      };

      // (a) Prior entries survive verbatim unless their id mutated.
      std::vector<service::TopKEntry> pool;
      pool.reserve(state->ranking.size() + last_op.size());
      for (const service::TopKEntry& incumbent : state->ranking) {
        const auto it = last_op.find(incumbent.id);
        if (it == last_op.end()) {
          pool.push_back(incumbent);
          continue;
        }
        if (it->second->remove) continue;  // incumbent died
        if (const auto probed = reprobe(incumbent.id)) pool.push_back(*probed);
      }

      // (b) Mutated non-incumbents, cutoff-seeded by the prior k-th: a
      // newcomer whose bound is strictly below it cannot enter as long
      // as the soundness rule below holds — and when it doesn't, the
      // fallback recomputes everything anyway, so skipping here is
      // always safe. The strict '<' mirrors the walk's tie rule: bound
      // == k-th could still realize the k-th similarity and win by id.
      for (const auto& [id, record] : last_op) {
        if (record->remove) continue;
        const bool incumbent = std::any_of(
            state->ranking.begin(), state->ranking.end(),
            [id = id](const service::TopKEntry& e) { return e.id == id; });
        if (incumbent) continue;  // handled in (a)
        const service::CatalogEntry entry = catalog_->Get(id);
        if (entry.community == nullptr) continue;  // raced a later remove
        if (entry.community->d() != state->community->d()) continue;
        const Community* b = nullptr;
        const Community* a = nullptr;
        OrientCouple(*state->community, *entry.community, &b, &a);
        if (!SizesAdmissible(b->size(), a->size())) continue;
        if (prior_full) {
          const double bound =
              SimilarityUpperBound(*b, *a, state->topk.join.eps);
          if (bound < old_kth.similarity) {
            outcome.reprobe_skipped += 1;
            continue;
          }
        }
        const auto refined =
            ComputeSimilarity(state->topk.method, *b, *a, state->topk.join);
        CSJ_CHECK(refined.has_value());
        outcome.reprobed += 1;
        pool.push_back(service::TopKEntry{entry.id, entry.version,
                                          refined->Similarity()});
      }

      std::sort(pool.begin(), pool.end(), RankedLess{});
      if (pool.size() > k) pool.resize(k);

      // Soundness: a partial prior contained EVERY admissible entry, so
      // the pool does too. A full prior proves only that unmutated
      // non-incumbents rank strictly after the old k-th — the truncated
      // pool is exact iff it is full again with its k-th at-or-before
      // the old k-th (transitively ahead of everything unexamined).
      // Otherwise the incumbent k-th bound is invalidated: fall back.
      const bool sound =
          !prior_full ||
          (pool.size() >= k && !RankedLess{}(old_kth, pool.back()));
      if (sound) {
        next = std::move(pool);
        outcome.fast_path = true;
      } else {
        fast = false;
      }
    }

    if (!fast) {
      // Full recompute — TopKSimilarService::Query takes the prescreen
      // path when the query options ask for it, exhaustive otherwise.
      // The cursor restarts at the seq read BEFORE the recompute:
      // mutations racing the recompute land after it and are re-probed
      // (possibly redundantly, never missed) next time.
      const uint64_t pre = catalog_->mutation_seq();
      const service::TopKResult result =
          options_.service->Query(*state->community, state->topk);
      CSJ_CHECK(!result.deadline_expired);
      next = result.entries;
      next_cursor = std::max(next_cursor, pre);
      fallbacks_.fetch_add(1, std::memory_order_relaxed);
    } else {
      fast_paths_.fetch_add(1, std::memory_order_relaxed);
    }

    const uint64_t s2 = catalog_->mutations_started();
    outcome.stable = (f1 == s2);
    outcome.records_consumed =
        static_cast<uint32_t>(next_cursor - prior_cursor);
    outcome.changed = state->has_baseline && !SameRanking(state->ranking, next);
    if (outcome.changed) {
      trigger.emplace();
      trigger->query = query;
      trigger->before = state->ranking;
    }

    state->ranking = std::move(next);
    state->cursor = next_cursor;
    state->refreshes += 1;
    if (outcome.changed) {
      state->triggers += 1;
      trigger->refresh = state->refreshes;
      trigger->after = state->ranking;
    }
    state->has_baseline = true;

    refreshes_.fetch_add(1, std::memory_order_relaxed);
    reprobed_joins_.fetch_add(outcome.reprobed, std::memory_order_relaxed);
    reprobe_skipped_.fetch_add(outcome.reprobe_skipped,
                               std::memory_order_relaxed);
    if (outcome.changed) triggers_.fetch_add(1, std::memory_order_relaxed);

    if (outcome.stable && options_.result_cache != nullptr) {
      PublishToCache(*state, f1);
    }
  }

  if (trigger.has_value()) {
    std::vector<std::function<void(const TriggerEvent&)>> callbacks;
    {
      std::lock_guard lock(registry_mu_);
      callbacks = callbacks_;
    }
    for (const auto& callback : callbacks) callback(*trigger);
  }
  return outcome;
}

uint32_t TopKMaintainer::RefreshAll() {
  uint32_t count = 0;
  {
    std::lock_guard lock(registry_mu_);
    count = static_cast<uint32_t>(queries_.size());
  }
  uint32_t changed = 0;
  for (uint32_t q = 0; q < count; ++q) {
    if (Refresh(q).changed) ++changed;
  }
  return changed;
}

std::vector<service::TopKEntry> TopKMaintainer::Ranking(QueryId query) const {
  const QueryState* state = nullptr;
  {
    std::lock_guard lock(registry_mu_);
    CSJ_CHECK(query < queries_.size()) << "unknown query id";
    state = queries_[query].get();
  }
  std::lock_guard lock(state->mu);
  return state->ranking;
}

uint64_t TopKMaintainer::trigger_count(QueryId query) const {
  const QueryState* state = nullptr;
  {
    std::lock_guard lock(registry_mu_);
    CSJ_CHECK(query < queries_.size()) << "unknown query id";
    state = queries_[query].get();
  }
  std::lock_guard lock(state->mu);
  return state->triggers;
}

void TopKMaintainer::Subscribe(
    std::function<void(const TriggerEvent&)> callback) {
  std::lock_guard lock(registry_mu_);
  callbacks_.push_back(std::move(callback));
}

void TopKMaintainer::PublishToCache(const QueryState& state, uint64_t tag) {
  service::ResultCacheKey key;
  key.state_version = tag;
  key.query_fingerprint = state.fingerprint;
  key.k = state.topk.k;
  key.eps = state.topk.join.eps;
  key.method = static_cast<uint16_t>(state.topk.method);
  key.prescreen = state.topk.prescreen ? 1 : 0;
  key.use_bound_cutoff = state.topk.use_bound_cutoff ? 1 : 0;
  key.prescreen_threshold = state.topk.prescreen_threshold;
  options_.result_cache->Insert(
      key, std::make_shared<const std::vector<service::TopKEntry>>(
               state.ranking));
  cache_publishes_.fetch_add(1, std::memory_order_relaxed);
}

TopKMaintainer::Stats TopKMaintainer::GetStats() const {
  Stats stats;
  stats.refreshes = refreshes_.load(std::memory_order_relaxed);
  stats.fast_paths = fast_paths_.load(std::memory_order_relaxed);
  stats.fallbacks = fallbacks_.load(std::memory_order_relaxed);
  stats.log_truncations = log_truncations_.load(std::memory_order_relaxed);
  stats.reprobed_joins = reprobed_joins_.load(std::memory_order_relaxed);
  stats.reprobe_skipped = reprobe_skipped_.load(std::memory_order_relaxed);
  stats.triggers = triggers_.load(std::memory_order_relaxed);
  stats.cache_publishes = cache_publishes_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace csj::evolve
