#ifndef CSJ_EVOLVE_DRIFT_H_
#define CSJ_EVOLVE_DRIFT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "core/community.h"
#include "core/join_options.h"
#include "core/types.h"
#include "service/catalog.h"
#include "service/workload.h"
#include "util/rng.h"

namespace csj::util {
class ThreadPool;
}  // namespace csj::util

namespace csj::evolve {

/// One step of the continuous-evolution stream. Every event is fully
/// materialized at generation time (payload vectors, newborn buffers),
/// so a trace replays without consuming any randomness — the same trace
/// applied twice, in any process, on any thread count, produces the
/// same catalog bytes.
enum class DriftEventKind : uint8_t {
  kUserJoin,   ///< one user joins community_id (payload: user_key, user)
  kUserLeave,  ///< the user under user_key leaves community_id
  kDecay,      ///< every counter of community_id scaled by decay_factor
  kBirth,      ///< a new community appears (payload: born, anchor_id)
  kDeath,      ///< community_id disappears from the catalog
};

struct DriftEvent {
  DriftEventKind kind = DriftEventKind::kUserJoin;
  uint64_t community_id = 0;
  /// Stable per-community user identity. Every community's initial
  /// users are keys 0..size-1; each join mints the next unused key;
  /// keys are never reused. Because membership is keyed (not
  /// positional), join/leave events touching DISTINCT keys commute
  /// within one community — the property the metamorphic suite pins.
  uint64_t user_key = 0;
  std::vector<Count> user;                 ///< kUserJoin payload
  double decay_factor = 1.0;               ///< kDecay payload
  std::shared_ptr<const Community> born;   ///< kBirth payload
  uint64_t anchor_id = 0;                  ///< kBirth: cluster anchor id
};

struct DriftOptions {
  /// The seeded starting catalog (ids 1..catalog_size) and the planted
  /// cluster structure births are minted from.
  service::WorkloadOptions base;
  /// Total events in the trace, grouped into epochs of `quiesce_every`
  /// (the last epoch may be short).
  uint32_t events = 400;
  uint32_t quiesce_every = 40;
  /// Event-mix weights (normalized over their sum). When a drawn kind
  /// is impossible in the current simulated state (nothing may leave,
  /// nothing may die), the event degrades to a join — the stream never
  /// stalls.
  double join_weight = 0.45;
  double leave_weight = 0.25;
  double decay_weight = 0.12;
  double birth_weight = 0.10;
  double death_weight = 0.08;
  /// Counter decay multiplier (counts scale as floor(c * factor)).
  double decay_factor = 0.9;
  /// Leaves never shrink a community below this many users (the catalog
  /// rejects empty communities, and the CSJ size rule makes very small
  /// ones uninteresting).
  uint32_t min_community_size = 8;
  /// Deaths never shrink the catalog below this many resident
  /// communities; anchors never die (they seed births and sessions).
  uint32_t min_catalog_size = 4;
  /// Seed of the drift stream itself (independent of base.seed, so one
  /// catalog can be driven by many distinct streams).
  uint64_t seed = 99;
};

/// Deterministic drift-trace generator over a `ServeWorkload` catalog.
///
/// Construction builds the seeded workload, then rolls the WHOLE event
/// trace serially from one Rng while simulating per-community
/// membership (so leaves always name a live key, deaths a live
/// community, and size floors hold). All randomness is spent here;
/// replaying is pure. Immutable after construction.
class DriftModel {
 public:
  explicit DriftModel(DriftOptions options);

  const DriftOptions& options() const { return options_; }
  const service::ServeWorkload& workload() const { return workload_; }
  const std::vector<DriftEvent>& trace() const { return trace_; }

  uint32_t epochs() const;
  std::span<const DriftEvent> epoch(uint32_t e) const;

  /// Cluster anchor id for a BASE community id (1-based), from the
  /// workload's cluster layout. Born communities carry their anchor in
  /// the birth event instead.
  uint64_t AnchorOf(uint64_t base_id) const;

 private:
  DriftOptions options_;
  service::ServeWorkload workload_;
  std::vector<DriftEvent> trace_;
};

/// Per-epoch accounting of one DriftReplayer quiesce cycle.
struct EpochStats {
  uint32_t events = 0;
  uint32_t joins = 0;
  uint32_t leaves = 0;
  uint32_t decays = 0;
  uint32_t noop_decays = 0;  ///< decays that changed no counter (no install)
  uint32_t births = 0;
  uint32_t deaths = 0;
  uint32_t installs = 0;  ///< dirty communities bulk-installed at quiesce
  uint32_t removes = 0;
  uint32_t session_rebuilds = 0;
  double apply_seconds = 0.0;
};

/// Replays drift events against a live `CommunityCatalog`.
///
/// Membership state lives OUTSIDE the catalog (per-community ordered
/// key -> counters maps); the catalog only ever sees frozen snapshots.
/// `Apply` mutates the state and drives the per-community anchor
/// sessions (`LiveCoupleSession` over `IncrementalCsj`) incrementally;
/// `Quiesce` freezes every dirty community (users in ascending key
/// order), installs them through one ascending-id BulkLoad, applies
/// deaths through ascending-id Removes, and re-attaches any session the
/// epoch invalidated (decay rewrites B wholesale; an anchor upsert
/// makes the pinned A stale — both take the documented A-churn REBUILD
/// path). Snapshot freezing fans out on the pool slot-per-index, so the
/// post-quiesce catalog — entries, versions, mutation log — is
/// byte-identical at any thread count.
///
/// Externally synchronized: one owner drives Apply/Quiesce. Readers of
/// the CATALOG (queries, the maintainer) are free to race; accessors on
/// the replayer itself are owner-only.
class DriftReplayer {
 public:
  struct Options {
    /// Join parameters for the anchor sessions (eps, parts, matcher).
    JoinOptions session_join;
    /// Maintain a live anchor-similarity session per DRIFTING non-anchor
    /// community (attached lazily on its first event).
    bool anchor_sessions = true;
    util::ThreadPool* pool = nullptr;  ///< null = ThreadPool::Global()
    uint32_t freeze_threads = 0;       ///< 0 = the pool's thread count
  };

  /// Bulk-loads the model's base catalog (ids 1..N, zero-copy) into
  /// `catalog` and mirrors it into the membership state. Neither pointer
  /// is owned; both must outlive the replayer.
  DriftReplayer(const DriftModel* model, service::CommunityCatalog* catalog,
                Options options);

  /// Applies one slice of events to the membership state (no catalog
  /// writes except through sessions' pinned snapshots, which are
  /// read-only). Partial accounting accumulates into the next Quiesce's
  /// EpochStats.
  void Apply(std::span<const DriftEvent> events);

  /// Flushes the epoch to the catalog (see class comment) and returns
  /// the accumulated stats. The catalog is a quiesce point afterwards:
  /// its state is the deterministic function of (model seed, epochs
  /// applied).
  EpochStats Quiesce();

  /// Apply(model->epoch(e)) + Quiesce().
  EpochStats ApplyEpoch(uint32_t e);

  uint64_t events_applied() const { return events_applied_; }

  /// Frozen snapshot of `id`'s current membership (the exact bytes the
  /// next Quiesce would install), or null when not alive. Owner-only.
  std::shared_ptr<const Community> LiveSnapshot(uint64_t id) const;

  /// The live anchor session of `id` (null when none / detached).
  const service::LiveCoupleSession* session(uint64_t id) const;

  /// Alive community ids, ascending. Owner-only.
  std::vector<uint64_t> live_ids() const;

 private:
  struct CommunityState {
    /// key -> counters. Lazily materialized from `frozen` on the first
    /// membership-mutating event (a 10k-community catalog where only a
    /// few hundred communities drift never copies the rest).
    std::map<uint64_t, std::vector<Count>> users;
    bool materialized = false;
    uint64_t anchor_id = 0;  ///< 0 = none (anchors themselves)
    bool dirty = false;
    /// Last frozen snapshot (== installed bytes once quiesced).
    std::shared_ptr<const Community> frozen;
    std::unique_ptr<service::LiveCoupleSession> session;
    /// user_key -> live session handle, for every key the session has
    /// absorbed incrementally.
    std::map<uint64_t, service::LiveCoupleSession::Handle> handles;
    /// Set once the community has drifted; from then on Quiesce keeps a
    /// session attached (rebuilding when invalidated).
    bool wants_session = false;
  };

  void AttachSession(CommunityState& state);
  std::shared_ptr<const Community> Freeze(uint64_t id,
                                          const CommunityState& state) const;

  const DriftModel* model_;
  service::CommunityCatalog* catalog_;
  Options options_;
  std::map<uint64_t, CommunityState> states_;  ///< ordered: deterministic
  std::vector<uint64_t> pending_removes_;
  EpochStats pending_;
  uint64_t events_applied_ = 0;
};

}  // namespace csj::evolve

#endif  // CSJ_EVOLVE_DRIFT_H_
