#ifndef CSJ_EVOLVE_MAINTAINER_H_
#define CSJ_EVOLVE_MAINTAINER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "core/community.h"
#include "service/catalog.h"
#include "service/result_cache.h"
#include "service/topk.h"

namespace csj::evolve {

/// Fired by a refresh exactly when the query's maintained top-k SET OR
/// ORDER changed: the ranked (id, similarity) sequence differs from the
/// previous refresh. Entry VERSIONS are deliberately excluded from the
/// comparison — a byte-identical re-upsert mints a fresh version without
/// changing what the ranking means, and must not alert anyone.
struct TriggerEvent {
  uint32_t query = 0;
  /// This query's refresh ordinal (1 = the first refresh after the
  /// baseline) at which the change was observed.
  uint64_t refresh = 0;
  std::vector<service::TopKEntry> before;
  std::vector<service::TopKEntry> after;
};

/// Keeps registered queries' top-k rankings current under catalog churn
/// without recomputing them from scratch.
///
/// Fast path (per refresh): read the catalog mutation log since the
/// query's cursor and reduce it to the last operation per id. Build a
/// candidate pool from (a) surviving prior entries — re-probed with an
/// exact join when their id mutated, kept verbatim otherwise — and (b)
/// mutated non-incumbents, which are bound-checked first: the prior k-th
/// similarity is the CUTOFF SEED, and any newcomer whose upper bound is
/// strictly below it cannot enter (same strict-tie rule as the top-k
/// walk). Rank the pool, truncate to k.
///
/// Soundness rule: the truncated pool IS the exact top-k iff the prior
/// ranking was partial (it then contained every admissible entry), or it
/// is full again with its k-th entry ranking at-or-before the prior k-th
/// — every unmutated non-incumbent ranked strictly after the prior k-th
/// and stays strictly after the new one. When the rule fails (the
/// incumbent k-th bound was invalidated: incumbents fell or died), or
/// the cursor fell off the log's retention window, the refresh FALLS
/// BACK to TopKSimilarService::Query — the prescreen/exhaustive path —
/// and restarts the cursor. Either way the produced ranking is
/// byte-identical to a fresh recompute at any quiesce point (the
/// differential suite proves it per refresh).
///
/// Concurrency: refreshes of one query serialize on a per-query mutex;
/// different queries refresh concurrently, and catalog churn may race
/// any refresh (the ranking then reflects the same per-shard-atomic view
/// a fresh query racing the same churn could see — never a torn entry).
/// Trigger callbacks are invoked after the per-query lock is released,
/// on the refreshing thread; subscribers synchronize themselves.
class TopKMaintainer {
 public:
  struct Options {
    /// Engine for baseline/fallback recomputes (not owned). Required.
    const service::TopKSimilarService* service = nullptr;
    /// Optional serving-layer result cache to publish maintained
    /// rankings into (not owned). A refresh that PROVES clock stability
    /// (catalog mutations_finished before == mutations_started after)
    /// inserts its ranking under that stable tag, so the next serving
    /// lookup of the same query is a hit without recomputing — the
    /// maintainer keeps the hot-query cache warm across churn.
    service::TopKResultCache* result_cache = nullptr;
    /// false pins every refresh to the full-recompute path (the
    /// cost-comparison arm of csj_evolve).
    bool allow_fast_path = true;
  };

  using QueryId = uint32_t;

  /// `catalog` is not owned; it should be constructed with a nonzero
  /// Options::mutation_log_capacity or every refresh will fall back.
  TopKMaintainer(const service::CommunityCatalog* catalog, Options options);

  /// Registers a standing query. The first Refresh establishes its
  /// baseline ranking with a full recompute (never fires a trigger).
  QueryId Register(std::shared_ptr<const Community> query,
                   const service::TopKOptions& topk);

  struct RefreshOutcome {
    bool changed = false;    ///< the (id, similarity) ranking moved
    bool fast_path = false;  ///< maintained incrementally, no recompute
    bool stable = false;     ///< clock-stable (tag named one state)
    uint32_t records_consumed = 0;  ///< mutation-log records advanced over
    uint32_t reprobed = 0;          ///< exact joins on the fast path
    uint32_t reprobe_skipped = 0;   ///< newcomers pruned by the cutoff seed
  };

  /// Brings one query's ranking up to date (see class comment).
  RefreshOutcome Refresh(QueryId query);

  /// Refreshes every registered query in registration order; returns
  /// how many changed.
  uint32_t RefreshAll();

  /// Copy of the query's current maintained ranking.
  std::vector<service::TopKEntry> Ranking(QueryId query) const;

  uint64_t trigger_count(QueryId query) const;

  /// Registers a trigger callback (applies to all queries). Not
  /// removable; subscribe before refreshing.
  void Subscribe(std::function<void(const TriggerEvent&)> callback);

  struct Stats {
    uint64_t refreshes = 0;
    uint64_t fast_paths = 0;
    uint64_t fallbacks = 0;  ///< full recomputes, baselines included
    uint64_t log_truncations = 0;
    uint64_t reprobed_joins = 0;
    uint64_t reprobe_skipped = 0;
    uint64_t triggers = 0;
    uint64_t cache_publishes = 0;
  };
  Stats GetStats() const;

 private:
  struct QueryState {
    mutable std::mutex mu;
    std::shared_ptr<const Community> community;
    service::TopKOptions topk;
    uint64_t fingerprint = 0;  ///< content identity, for cache publishes
    bool has_baseline = false;
    uint64_t cursor = 0;  ///< last mutation-log seq folded into `ranking`
    std::vector<service::TopKEntry> ranking;
    uint64_t refreshes = 0;
    uint64_t triggers = 0;
  };

  void PublishToCache(const QueryState& state, uint64_t tag);

  const service::CommunityCatalog* catalog_;
  Options options_;
  mutable std::mutex registry_mu_;  ///< guards queries_ growth + callbacks
  std::vector<std::unique_ptr<QueryState>> queries_;
  std::vector<std::function<void(const TriggerEvent&)>> callbacks_;
  std::atomic<uint64_t> refreshes_{0};
  std::atomic<uint64_t> fast_paths_{0};
  std::atomic<uint64_t> fallbacks_{0};
  std::atomic<uint64_t> log_truncations_{0};
  std::atomic<uint64_t> reprobed_joins_{0};
  std::atomic<uint64_t> reprobe_skipped_{0};
  std::atomic<uint64_t> triggers_{0};
  std::atomic<uint64_t> cache_publishes_{0};
};

}  // namespace csj::evolve

#endif  // CSJ_EVOLVE_MAINTAINER_H_
